/**
 * @file
 * Tests for the metadata line index (the O(working set) transaction
 * sweeps) and the hoisted signature hashing.
 *
 * The index is a pure host-side optimisation: it must never change
 * what the simulator computes. Three layers of evidence:
 *  - a randomized fuzzer drives tiny-cache machines through every
 *    metadata transition (store, storeT, promotion, merge-down,
 *    eviction, commit, abort, lazy drain, crash) with the per-walk
 *    audit armed, cross-checking index against brute-force scan after
 *    every operation;
 *  - indexed and full-scan sweeps over the same operation stream must
 *    leave identical machine state (cycles, stats);
 *  - the signature probe hoist is pinned to the exact historical bit
 *    pattern with hard-coded slot values.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/pm_system.hh"

namespace slpmt
{
namespace
{

/** Tiny geometry (matches the crash explorer): single-digit sets per
 *  level so promotions and evictions happen within a few stores. */
SystemConfig
tinyConfig(SchemeKind kind, LoggingStyle style, bool use_index)
{
    SystemConfig sc;
    sc.scheme = SchemeConfig::forKind(kind);
    sc.style = style;
    sc.hierarchy.l1 = CacheConfig{"L1", 1024, 2, 4};
    sc.hierarchy.l2 = CacheConfig{"L2", 2048, 2, 12};
    sc.hierarchy.l3 = CacheConfig{"L3", 4096, 4, 40};
    sc.useMetaIndex = use_index;
    return sc;
}

/** Assert the index matches a brute-force scan, with context. */
void
expectIndexClean(PmSystem &sys, const std::string &where)
{
    std::string why;
    EXPECT_TRUE(sys.hierarchy().verifyMetaIndex(&why))
        << where << ": " << why;
}

/**
 * Drive one machine through a random operation mix. Every operation
 * is followed by a full index-vs-scan cross-check; the armed audit
 * additionally panics inside any sweep that walks a stale index.
 */
void
fuzzMachine(SchemeKind kind, LoggingStyle style, std::uint64_t seed,
            std::size_t num_ops)
{
    PmSystem sys(tinyConfig(kind, style, true));
    sys.hierarchy().setMetaIndexAudit(true);
    Rng rng(seed);

    // A footprint of 32 lines in a 16-line private hierarchy keeps
    // every level churning.
    const Addr base = sys.map().heapBase() + 8192;
    auto lineAddr = [&] { return base + rng.below(32) * cacheLineSize; };

    for (std::size_t i = 0; i < num_ops; ++i) {
        const std::uint64_t pick = rng.below(100);
        const std::string where =
            "op " + std::to_string(i) + " pick " + std::to_string(pick);
        if (pick < 35) {
            // Plain store (logged, eager).
            sys.write<std::uint64_t>(lineAddr() + rng.below(8) * 8,
                                     rng.next());
        } else if (pick < 55) {
            // storeT with random operands.
            StoreFlags flags;
            flags.lazy = rng.below(2) != 0;
            flags.logFree = rng.below(2) != 0;
            sys.writeT<std::uint64_t>(lineAddr() + rng.below(8) * 8,
                                      rng.next(), flags);
        } else if (pick < 70) {
            sys.read<std::uint64_t>(lineAddr());
        } else if (pick < 78) {
            if (!sys.inTransaction())
                sys.txBegin();
        } else if (pick < 86) {
            if (sys.inTransaction())
                sys.txCommit();
        } else if (pick < 90) {
            if (sys.inTransaction())
                sys.txAbort();
        } else if (pick < 93) {
            // Remote coherence traffic (may force lazy drains).
            if (rng.below(2))
                sys.engine().remoteWrite(lineAddr());
            else
                sys.engine().remoteRead(lineAddr());
        } else if (pick < 96) {
            sys.engine().persistAllLazy();
        } else if (pick < 98) {
            sys.engine().contextSwitch();
        } else {
            if (!sys.inTransaction()) {
                sys.crash();
                sys.recoverHardware();
            }
        }
        expectIndexClean(sys, where);
        if (::testing::Test::HasFailure())
            return;  // first divergence is the useful one
    }

    if (sys.inTransaction())
        sys.txCommit();
    sys.quiesce();
    expectIndexClean(sys, "after quiesce");
    EXPECT_EQ(sys.hierarchy().l1().metaLineCount(), 0u);
    EXPECT_EQ(sys.hierarchy().l2().metaLineCount(), 0u);
}

TEST(LineIndex, FuzzUndoSchemes)
{
    for (SchemeKind kind : {SchemeKind::SLPMT, SchemeKind::FG,
                            SchemeKind::ATOM, SchemeKind::EDE}) {
        fuzzMachine(kind, LoggingStyle::Undo,
                    0x5EED0 + static_cast<std::uint64_t>(kind), 1500);
        if (::testing::Test::HasFailure())
            return;
    }
}

TEST(LineIndex, FuzzRedoStyle)
{
    // Redo mode exercises the no-steal eviction stash and the
    // sorted write-set drain.
    for (std::uint64_t seed : {7u, 99u, 4242u}) {
        fuzzMachine(SchemeKind::SLPMT, LoggingStyle::Redo, seed, 1500);
        if (::testing::Test::HasFailure())
            return;
    }
}

TEST(LineIndex, FuzzLargeGeometryLazyHeavy)
{
    // Default (paper) geometry with a lazy-heavy scheme: the index
    // must also track metadata spread thin across big arrays.
    PmSystem sys{[] {
        SystemConfig sc;
        sc.scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
        return sc;
    }()};
    sys.hierarchy().setMetaIndexAudit(true);
    Rng rng(123);
    const Addr base = sys.map().heapBase() + 8192;
    for (int txn = 0; txn < 30; ++txn) {
        sys.txBegin();
        for (int s = 0; s < 20; ++s) {
            StoreFlags flags;
            flags.lazy = rng.below(2) != 0;
            sys.writeT<std::uint64_t>(
                base + rng.below(512) * cacheLineSize, rng.next(),
                flags);
        }
        sys.txCommit();
        expectIndexClean(sys, "txn " + std::to_string(txn));
    }
    sys.engine().persistAllLazy();
    expectIndexClean(sys, "after drain");
}

TEST(LineIndex, IndexedAndFullScanMachinesStayIdentical)
{
    // The same deterministic operation stream on two machines — one
    // indexed, one using the historical full scans — must produce the
    // same clock and the same stats, store for store.
    for (LoggingStyle style : {LoggingStyle::Undo, LoggingStyle::Redo}) {
        PmSystem indexed(
            tinyConfig(SchemeKind::SLPMT, style, /*use_index=*/true));
        PmSystem scanned(
            tinyConfig(SchemeKind::SLPMT, style, /*use_index=*/false));
        auto drive = [](PmSystem &sys) {
            Rng rng(2026);
            const Addr base = sys.map().heapBase() + 8192;
            for (int txn = 0; txn < 40; ++txn) {
                sys.txBegin();
                for (int s = 0; s < 12; ++s) {
                    StoreFlags flags;
                    flags.lazy = rng.below(3) == 0;
                    flags.logFree = rng.below(4) == 0;
                    sys.writeT<std::uint64_t>(
                        base + rng.below(48) * cacheLineSize,
                        rng.next(), flags);
                }
                if (txn % 7 == 3)
                    sys.txAbort();
                else
                    sys.txCommit();
            }
            sys.engine().persistAllLazy();
        };
        drive(indexed);
        drive(scanned);
        EXPECT_EQ(indexed.cycles(), scanned.cycles());
        EXPECT_EQ(indexed.stats().snapshot(),
                  scanned.stats().snapshot());
    }
}

TEST(LineIndex, AuditDetectsHandCorruptedIndex)
{
    PmSystem sys(
        tinyConfig(SchemeKind::SLPMT, LoggingStyle::Undo, true));
    sys.txBegin();
    sys.write<std::uint64_t>(sys.map().heapBase() + 8192, 1);
    std::string why;
    ASSERT_TRUE(sys.hierarchy().verifyMetaIndex(&why)) << why;

    // Sabotage: give a private line metadata behind the index's back.
    CacheLine *line =
        sys.hierarchy().findPrivate(sys.map().heapBase() + 8192);
    ASSERT_NE(line, nullptr);
    Cache &owner = sys.hierarchy().l1().find(line->tag) == line
                       ? sys.hierarchy().l1()
                       : sys.hierarchy().l2();
    const std::uint8_t saved = line->txnId;
    line->txnId = saved == 0 ? 1 : 0;
    // Pretend the sync never happened.
    owner.setMetaLinkedForTest(*line, false);
    EXPECT_FALSE(sys.hierarchy().verifyMetaIndex(&why));
    EXPECT_NE(why.find("not indexed"), std::string::npos) << why;

    // Restore so teardown paths stay sane.
    line->txnId = saved;
    owner.setMetaLinkedForTest(*line, true);
    sys.txCommit();
}

// -------------------------------------------------------------------
// Signature probe hoist: behaviour-preserving proof
// -------------------------------------------------------------------

TEST(SignatureProbe, PinsExactSlotPattern)
{
    // Hard-coded slots computed from the pre-hoist implementation
    // (mix64(lineBase ^ salt[i]) % 2048). If these move, the working
    // set signatures change and every lazy-persistency figure shifts.
    const auto p1 = Signature::probeFor(0x100000000ULL);
    EXPECT_EQ(p1.slots[0], 831u);
    EXPECT_EQ(p1.slots[1], 1120u);
    EXPECT_EQ(p1.slots[2], 944u);
    EXPECT_EQ(p1.slots[3], 1712u);

    const auto p2 = Signature::probeFor(0x100000040ULL);
    EXPECT_EQ(p2.slots[0], 1854u);
    EXPECT_EQ(p2.slots[1], 1807u);
    EXPECT_EQ(p2.slots[2], 77u);
    EXPECT_EQ(p2.slots[3], 945u);

    // Offsets within a line probe identically to the line base.
    const auto p3 = Signature::probeFor(0x100000040ULL + 37);
    EXPECT_EQ(p3.slots, p2.slots);
}

TEST(SignatureProbe, ProbeAndAddressPathsAgree)
{
    Signature sig;
    Rng rng(99);
    std::vector<Addr> inserted;
    for (int i = 0; i < 200; ++i) {
        const Addr addr = rng.next() & 0xFFFFFFFFFFC0ULL;
        inserted.push_back(addr);
        if (i % 2)
            sig.insert(addr);  // address path
        else
            sig.insert(Signature::probeFor(addr));  // probe path
    }
    for (Addr addr : inserted) {
        EXPECT_TRUE(sig.mightContain(addr));
        EXPECT_TRUE(sig.mightContain(Signature::probeFor(addr + 63)));
    }
    // The two query paths agree everywhere, hits and misses alike.
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = rng.next();
        EXPECT_EQ(sig.mightContain(addr),
                  sig.mightContain(Signature::probeFor(addr)));
    }
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
