/**
 * @file
 * The stats registry: registration semantics (including the
 * wiring-bug panics), histogram bucket-edge behaviour, reset, the
 * flattened snapshot/delta algebra, and the stable JSON dump.
 */

#include <gtest/gtest.h>

#include "sim/json.hh"
#include "stats/stats.hh"

namespace slpmt
{
namespace
{

TEST(Stats, CounterAccumulates)
{
    StatsRegistry reg;
    auto c = reg.counter("a.b");
    c++;
    c += 41;
    EXPECT_EQ(c.get(), 42u);
    EXPECT_EQ(reg.get("a.b"), 42u);
}

TEST(Stats, ReRegisteringSameKindSharesTheInstrument)
{
    StatsRegistry reg;
    auto c1 = reg.counter("shared");
    auto c2 = reg.counter("shared");
    c1 += 3;
    c2 += 4;
    EXPECT_EQ(reg.get("shared"), 7u);

    auto h1 = reg.histogram("hist", {1, 4});
    auto h2 = reg.histogram("hist", {1, 4});
    h1.record(2);
    h2.record(5);
    EXPECT_EQ(reg.get("hist.count"), 2u);
}

TEST(Stats, KindCollisionPanics)
{
    StatsRegistry reg;
    reg.counter("name");
    EXPECT_THROW(reg.gauge("name"), PanicError);
    EXPECT_THROW(reg.histogram("name", {1}), PanicError);

    reg.gauge("g");
    EXPECT_THROW(reg.counter("g"), PanicError);

    reg.histogram("h", {1, 2});
    EXPECT_THROW(reg.counter("h"), PanicError);
}

TEST(Stats, HistogramBoundsCollisionPanics)
{
    StatsRegistry reg;
    reg.histogram("h", {1, 2, 3});
    EXPECT_THROW(reg.histogram("h", {1, 2}), PanicError);
    EXPECT_THROW(reg.histogram("h", {1, 2, 4}), PanicError);
}

TEST(Stats, HistogramBoundsMustBeStrictlyIncreasing)
{
    StatsRegistry reg;
    EXPECT_THROW(reg.histogram("empty", {}), PanicError);
    EXPECT_THROW(reg.histogram("equal", {4, 4}), PanicError);
    EXPECT_THROW(reg.histogram("desc", {4, 2}), PanicError);
}

TEST(Stats, HistogramBucketEdgesAreInclusiveUpperBounds)
{
    StatsRegistry reg;
    auto h = reg.histogram("h", {10, 100});
    h.record(0);    // le10
    h.record(10);   // le10: bounds are inclusive
    h.record(11);   // le100
    h.record(100);  // le100
    h.record(101);  // inf
    EXPECT_EQ(reg.get("h.le10"), 2u);
    EXPECT_EQ(reg.get("h.le100"), 2u);
    EXPECT_EQ(reg.get("h.inf"), 1u);
    EXPECT_EQ(reg.get("h.count"), 5u);
    EXPECT_EQ(reg.get("h.sum"), 222u);
    EXPECT_EQ(h.get()->min, 0u);
    EXPECT_EQ(h.get()->max, 101u);
}

TEST(Stats, ResetZeroesValuesButKeepsRegistration)
{
    StatsRegistry reg;
    auto c = reg.counter("c");
    auto g = reg.gauge("g");
    auto h = reg.histogram("h", {8});
    c += 5;
    g.set(9);
    h.record(3);

    reg.reset();
    EXPECT_EQ(c.get(), 0u);
    EXPECT_EQ(g.get(), 0u);
    EXPECT_EQ(reg.get("h.count"), 0u);
    EXPECT_EQ(reg.get("h.le8"), 0u);

    // Handles stay live and the names still flatten.
    c += 2;
    h.record(1);
    const StatsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.at("c"), 2u);
    EXPECT_EQ(snap.at("h.count"), 1u);
    EXPECT_EQ(snap.count("g"), 1u);

    // Re-registering after reset still panics on a kind change.
    EXPECT_THROW(reg.counter("g"), PanicError);
}

TEST(Stats, SnapshotDeltaClampsAtZero)
{
    StatsRegistry reg;
    auto g = reg.gauge("g");
    auto c = reg.counter("c");
    g.set(10);
    const StatsSnapshot before = reg.snapshot();
    g.set(3);  // gauges may go down
    c += 7;
    const StatsSnapshot d = StatsRegistry::delta(before, reg.snapshot());
    EXPECT_EQ(d.at("g"), 0u);
    EXPECT_EQ(d.at("c"), 7u);
}

TEST(Stats, StatGroupPrefixesAndNests)
{
    StatsRegistry reg;
    StatGroup top(reg, "logbuf");
    StatGroup tier = top.group("tier0");
    auto c = tier.counter("records");
    c += 2;
    EXPECT_EQ(reg.get("logbuf.tier0.records"), 2u);
    EXPECT_EQ(tier.prefix(), "logbuf.tier0");
}

TEST(Stats, JsonKeysAreSortedAndStable)
{
    StatsRegistry reg;
    // Register out of order: the dump must sort.
    reg.counter("zeta") += 1;
    reg.histogram("mid.hist", {2}).record(1);
    reg.counter("alpha") += 3;

    const std::string json = reg.toJson();
    const std::size_t alpha = json.find("\"alpha\"");
    const std::size_t mid = json.find("\"mid.hist\"");
    const std::size_t zeta = json.find("\"zeta\"");
    ASSERT_NE(alpha, std::string::npos);
    ASSERT_NE(mid, std::string::npos);
    ASSERT_NE(zeta, std::string::npos);
    EXPECT_LT(alpha, mid);
    EXPECT_LT(mid, zeta);

    // Byte-identical across registries built in different orders.
    StatsRegistry reg2;
    reg2.counter("alpha") += 3;
    reg2.counter("zeta") += 1;
    reg2.histogram("mid.hist", {2}).record(1);
    EXPECT_EQ(json, reg2.toJson());

    // And the dump itself parses back.
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(json, &doc, &error)) << error;
    ASSERT_TRUE(doc.isObject());
    const JsonValue *a = doc.find("alpha");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->number, 3.0);
    const JsonValue *h = doc.find("mid.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_TRUE(h->isObject());
    ASSERT_NE(h->find("count"), nullptr);
    EXPECT_EQ(h->find("count")->number, 1.0);
}

TEST(Stats, DefaultConstructedHandlesAreInert)
{
    StatsRegistry::Counter c;
    StatsRegistry::Gauge g;
    StatsRegistry::Histogram h;
    c += 5;
    g.set(2);
    h.record(1);
    EXPECT_EQ(c.get(), 0u);
    EXPECT_EQ(g.get(), 0u);
    EXPECT_EQ(h.get(), nullptr);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
