/**
 * @file
 * The stats registry: registration semantics (including the
 * wiring-bug panics), histogram bucket-edge behaviour, reset, the
 * flattened snapshot/delta algebra, and the stable JSON dump.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "sim/json.hh"
#include "stats/stats.hh"

namespace slpmt
{
namespace
{

TEST(Stats, CounterAccumulates)
{
    StatsRegistry reg;
    auto c = reg.counter("a.b");
    c++;
    c += 41;
    EXPECT_EQ(c.get(), 42u);
    EXPECT_EQ(reg.get("a.b"), 42u);
}

TEST(Stats, ReRegisteringSameKindSharesTheInstrument)
{
    StatsRegistry reg;
    auto c1 = reg.counter("shared");
    auto c2 = reg.counter("shared");
    c1 += 3;
    c2 += 4;
    EXPECT_EQ(reg.get("shared"), 7u);

    auto h1 = reg.histogram("hist", {1, 4});
    auto h2 = reg.histogram("hist", {1, 4});
    h1.record(2);
    h2.record(5);
    EXPECT_EQ(reg.get("hist.count"), 2u);
}

TEST(Stats, KindCollisionPanics)
{
    StatsRegistry reg;
    reg.counter("name");
    EXPECT_THROW(reg.gauge("name"), PanicError);
    EXPECT_THROW(reg.histogram("name", {1}), PanicError);

    reg.gauge("g");
    EXPECT_THROW(reg.counter("g"), PanicError);

    reg.histogram("h", {1, 2});
    EXPECT_THROW(reg.counter("h"), PanicError);
}

TEST(Stats, HistogramBoundsCollisionPanics)
{
    StatsRegistry reg;
    reg.histogram("h", {1, 2, 3});
    EXPECT_THROW(reg.histogram("h", {1, 2}), PanicError);
    EXPECT_THROW(reg.histogram("h", {1, 2, 4}), PanicError);
}

TEST(Stats, HistogramBoundsMustBeStrictlyIncreasing)
{
    StatsRegistry reg;
    EXPECT_THROW(reg.histogram("empty", {}), PanicError);
    EXPECT_THROW(reg.histogram("equal", {4, 4}), PanicError);
    EXPECT_THROW(reg.histogram("desc", {4, 2}), PanicError);
}

TEST(Stats, HistogramBucketEdgesAreInclusiveUpperBounds)
{
    StatsRegistry reg;
    auto h = reg.histogram("h", {10, 100});
    h.record(0);    // le10
    h.record(10);   // le10: bounds are inclusive
    h.record(11);   // le100
    h.record(100);  // le100
    h.record(101);  // inf
    EXPECT_EQ(reg.get("h.le10"), 2u);
    EXPECT_EQ(reg.get("h.le100"), 2u);
    EXPECT_EQ(reg.get("h.inf"), 1u);
    EXPECT_EQ(reg.get("h.count"), 5u);
    EXPECT_EQ(reg.get("h.sum"), 222u);
    EXPECT_EQ(h.get()->min, 0u);
    EXPECT_EQ(h.get()->max, 101u);
}

TEST(Stats, ResetZeroesValuesButKeepsRegistration)
{
    StatsRegistry reg;
    auto c = reg.counter("c");
    auto g = reg.gauge("g");
    auto h = reg.histogram("h", {8});
    c += 5;
    g.set(9);
    h.record(3);

    reg.reset();
    EXPECT_EQ(c.get(), 0u);
    EXPECT_EQ(g.get(), 0u);
    EXPECT_EQ(reg.get("h.count"), 0u);
    EXPECT_EQ(reg.get("h.le8"), 0u);

    // Handles stay live and the names still flatten.
    c += 2;
    h.record(1);
    const StatsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.at("c"), 2u);
    EXPECT_EQ(snap.at("h.count"), 1u);
    EXPECT_EQ(snap.count("g"), 1u);

    // Re-registering after reset still panics on a kind change.
    EXPECT_THROW(reg.counter("g"), PanicError);
}

TEST(Stats, SnapshotDeltaClampsAtZero)
{
    StatsRegistry reg;
    auto g = reg.gauge("g");
    auto c = reg.counter("c");
    g.set(10);
    const StatsSnapshot before = reg.snapshot();
    g.set(3);  // gauges may go down
    c += 7;
    const StatsSnapshot d = StatsRegistry::delta(before, reg.snapshot());
    EXPECT_EQ(d.at("g"), 0u);
    EXPECT_EQ(d.at("c"), 7u);
}

TEST(Stats, StatGroupPrefixesAndNests)
{
    StatsRegistry reg;
    StatGroup top(reg, "logbuf");
    StatGroup tier = top.group("tier0");
    auto c = tier.counter("records");
    c += 2;
    EXPECT_EQ(reg.get("logbuf.tier0.records"), 2u);
    EXPECT_EQ(tier.prefix(), "logbuf.tier0");
}

TEST(Stats, JsonKeysAreSortedAndStable)
{
    StatsRegistry reg;
    // Register out of order: the dump must sort.
    reg.counter("zeta") += 1;
    reg.histogram("mid.hist", {2}).record(1);
    reg.counter("alpha") += 3;

    const std::string json = reg.toJson();
    const std::size_t alpha = json.find("\"alpha\"");
    const std::size_t mid = json.find("\"mid.hist\"");
    const std::size_t zeta = json.find("\"zeta\"");
    ASSERT_NE(alpha, std::string::npos);
    ASSERT_NE(mid, std::string::npos);
    ASSERT_NE(zeta, std::string::npos);
    EXPECT_LT(alpha, mid);
    EXPECT_LT(mid, zeta);

    // Byte-identical across registries built in different orders.
    StatsRegistry reg2;
    reg2.counter("alpha") += 3;
    reg2.counter("zeta") += 1;
    reg2.histogram("mid.hist", {2}).record(1);
    EXPECT_EQ(json, reg2.toJson());

    // And the dump itself parses back.
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(json, &doc, &error)) << error;
    ASSERT_TRUE(doc.isObject());
    const JsonValue *a = doc.find("alpha");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->number, 3.0);
    const JsonValue *h = doc.find("mid.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_TRUE(h->isObject());
    ASSERT_NE(h->find("count"), nullptr);
    EXPECT_EQ(h->find("count")->number, 1.0);
}

TEST(Stats, DefaultConstructedHandlesAreInert)
{
    StatsRegistry::Counter c;
    StatsRegistry::Gauge g;
    StatsRegistry::Histogram h;
    c += 5;
    g.set(2);
    h.record(1);
    EXPECT_EQ(c.get(), 0u);
    EXPECT_EQ(g.get(), 0u);
    EXPECT_EQ(h.get(), nullptr);
}

// ---- Percentile extraction ------------------------------------------
//
// Contract under test (stats.hh): percentile(num, den) returns the
// nearest-rank quantile interpolated within its holding bucket, and
// its error against the exact sorted-sample percentile is bounded by
// percentileErrorBound() — the width of the (min/max-clamped) bucket
// the quantile falls in. Geometric bounds with step factor f hence
// resolve any quantile to within a factor ~(f - 1) of its value;
// the service latency histograms use f = 1.25.

/** The exact nearest-rank percentile of a sample set. */
std::uint64_t
exactPercentile(std::vector<std::uint64_t> samples, std::uint64_t num,
                std::uint64_t den)
{
    std::sort(samples.begin(), samples.end());
    std::uint64_t rank = (samples.size() * num + den - 1) / den;
    rank = std::min<std::uint64_t>(
        std::max<std::uint64_t>(rank, 1), samples.size());
    return samples[rank - 1];
}

TEST(HistogramPercentile, EmptyHistogramReportsZero)
{
    StatsRegistry reg;
    auto h = reg.histogram("lat", {1, 2, 4});
    EXPECT_EQ(h.get()->percentile(99, 100), 0u);
    EXPECT_EQ(h.get()->percentileErrorBound(99, 100), 0u);
}

TEST(HistogramPercentile, ExactOnSingletonBuckets)
{
    // Consecutive-integer bounds make every bucket width zero, so
    // the estimate must equal the exact percentile.
    StatsRegistry reg;
    std::vector<std::uint64_t> bounds;
    for (std::uint64_t v = 0; v <= 64; ++v)
        bounds.push_back(v);
    auto h = reg.histogram("lat", bounds);

    Rng rng(mix64(99));
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t v = rng.below(64);
        samples.push_back(v);
        h.record(v);
    }
    for (const auto &[num, den] : std::vector<
             std::pair<std::uint64_t, std::uint64_t>>{
             {1, 100}, {50, 100}, {90, 100}, {99, 100}, {999, 1000}}) {
        EXPECT_EQ(h.get()->percentile(num, den),
                  exactPercentile(samples, num, den))
            << num << "/" << den;
        EXPECT_EQ(h.get()->percentileErrorBound(num, den), 0u);
    }
}

TEST(HistogramPercentile, ConstantSamplesCollapseTheBound)
{
    // min == max clamps the holding bucket to a point: every
    // percentile is exact with a zero bound.
    StatsRegistry reg;
    auto h = reg.histogram("lat", {10, 100, 1000});
    for (int i = 0; i < 32; ++i)
        h.record(500);
    EXPECT_EQ(h.get()->percentile(50, 100), 500u);
    EXPECT_EQ(h.get()->percentile(999, 1000), 500u);
    EXPECT_EQ(h.get()->percentileErrorBound(50, 100), 0u);
}

TEST(HistogramPercentile, WithinBucketBoundOnRandomizedInputs)
{
    // Geometric bounds (the service histogram shape) against exact
    // sorted-sample percentiles over several seeds and distributions.
    std::vector<std::uint64_t> bounds;
    for (std::uint64_t v = 64; v < 20'000'000; v += v / 4)
        bounds.push_back(v);

    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        StatsRegistry reg;
        auto h = reg.histogram("lat", bounds);
        Rng rng(mix64(seed));
        std::vector<std::uint64_t> samples;
        for (int i = 0; i < 4000; ++i) {
            // Log-uniform-ish: spans many buckets, like latencies.
            // Capped below the last bound — the overflow bucket's
            // width is the whole remaining range, so the relative
            // resolution claim below only holds for bounded buckets.
            const std::uint64_t v =
                (rng.next() % 1000) << (rng.next() % 14);
            samples.push_back(v);
            h.record(v);
        }
        for (const auto &[num, den] : std::vector<
                 std::pair<std::uint64_t, std::uint64_t>>{
                 {50, 100}, {90, 100}, {99, 100}, {999, 1000}}) {
            const std::uint64_t exact =
                exactPercentile(samples, num, den);
            const std::uint64_t est = h.get()->percentile(num, den);
            const std::uint64_t bound =
                h.get()->percentileErrorBound(num, den);
            const std::uint64_t diff =
                est > exact ? est - exact : exact - est;
            EXPECT_LE(diff, bound)
                << "seed " << seed << ", " << num << "/" << den
                << ": est " << est << " vs exact " << exact;
            // Geometric ~1.25x buckets: the bound itself stays within
            // ~30% of the estimated value (width/lo <= 0.27 for
            // interior buckets; clamping only shrinks it).
            if (est >= 64)
                EXPECT_LE(static_cast<double>(bound),
                          0.30 * static_cast<double>(est))
                    << "seed " << seed << ", " << num << "/" << den;
        }
    }
}

TEST(HistogramPercentile, EstimateIsMonotoneInTheQuantile)
{
    StatsRegistry reg;
    auto h = reg.histogram("lat", {10, 100, 1000, 10000});
    Rng rng(mix64(3));
    for (int i = 0; i < 1000; ++i)
        h.record(rng.below(20000));
    std::uint64_t prev = 0;
    for (std::uint64_t pct : {1, 10, 25, 50, 75, 90, 99}) {
        const std::uint64_t cur = h.get()->percentile(pct, 100);
        EXPECT_GE(cur, prev) << "p" << pct;
        prev = cur;
    }
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
