/**
 * @file
 * Multicore vs serialized-oracle differential fuzzing.
 *
 * The slot-store driver (mc_slots.hh) pins the PM layout, so the
 * interleaved multicore run and the serial replay of its commit log
 * must produce *byte-identical* slot regions — across core counts,
 * schemes, logging styles, and machine-wide crash points. The YCSB
 * driver adds the logical-equivalence side over the real KV
 * structures.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "multicore/mc_slots.hh"
#include "multicore/mc_ycsb.hh"
#include "test_util.hh"

namespace slpmt
{
namespace
{

McSlotsConfig
slotsConfig(std::size_t cores, SchemeKind kind, LoggingStyle style)
{
    McSlotsConfig cfg;
    cfg.numCores = cores;
    cfg.numSlots = 24;
    cfg.groupsPerCore = 12;
    cfg.writesPerGroup = 3;  // straddles the 4-op quantum
    cfg.seed = 7;
    cfg.sched.seed = 7;
    cfg.sched.quantumOps = 4;
    cfg.sys.scheme = SchemeConfig::forKind(kind);
    cfg.sys.style = style;
    cfg.sys.numCores = cores;
    return cfg;
}

std::string
comboName(std::size_t cores, SchemeKind kind, LoggingStyle style)
{
    return testName(kind) + "_" +
           (style == LoggingStyle::Undo ? "undo" : "redo") + "_c" +
           std::to_string(cores);
}

// ---------------------------------------------------------------------
// Clean runs: every core count x scheme x style
// ---------------------------------------------------------------------

TEST(McDifferential, SlotImagesMatchSerialOracleOnCleanRuns)
{
    for (std::size_t cores : {1, 2, 4, 8}) {
        for (SchemeKind kind : {SchemeKind::SLPMT, SchemeKind::FG}) {
            for (LoggingStyle style :
                 {LoggingStyle::Undo, LoggingStyle::Redo}) {
                const std::string combo =
                    comboName(cores, kind, style);
                const McSlotsConfig cfg =
                    slotsConfig(cores, kind, style);
                const McSlotsResult run = runMcSlots(cfg);
                ASSERT_FALSE(run.crashed) << combo;
                EXPECT_EQ(run.commitLog.size(),
                          cores * cfg.groupsPerCore)
                    << combo;
                EXPECT_EQ(run.image,
                          serialSlotsImage(cfg, run.commitLog))
                    << combo;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Crashed runs: stratified machine-wide power failures
// ---------------------------------------------------------------------

TEST(McDifferential, SlotImagesMatchSerialOracleAcrossCrashPoints)
{
    for (std::size_t cores : {2, 4}) {
        for (SchemeKind kind : {SchemeKind::SLPMT, SchemeKind::FG}) {
            for (LoggingStyle style :
                 {LoggingStyle::Undo, LoggingStyle::Redo}) {
                const std::string combo =
                    comboName(cores, kind, style);
                const McSlotsConfig cfg =
                    slotsConfig(cores, kind, style);

                // Size the stratification from a dry run.
                const std::uint64_t total =
                    runMcSlots(cfg).storesExecuted;
                ASSERT_GT(total, 8u) << combo;

                for (std::uint64_t point :
                     {std::uint64_t{1}, total / 4, total / 2,
                      3 * total / 4, total - 1}) {
                    const McSlotsResult run = runMcSlots(cfg, point);
                    EXPECT_TRUE(run.crashed)
                        << combo << " @" << point;
                    EXPECT_EQ(run.image,
                              serialSlotsImage(cfg, run.commitLog))
                        << combo << " @" << point;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// The configuration genuinely provokes cross-core conflicts
// ---------------------------------------------------------------------

TEST(McDifferential, SpanningGroupsProvokeConflictAborts)
{
    // Groups of 3 stores against a 4-op quantum leave suspended
    // in-flight transactions around every quantum boundary; with all
    // cores drawing from one small slot pool, probes must hit them.
    const McSlotsConfig cfg =
        slotsConfig(4, SchemeKind::SLPMT, LoggingStyle::Undo);
    const McSlotsResult run = runMcSlots(cfg);
    ASSERT_FALSE(run.crashed);
    EXPECT_GT(run.stats.at("multicore.conflictAborts"), 0u);

    // Aborted groups retried: the commit log still ends complete.
    EXPECT_EQ(run.commitLog.size(), cfg.numCores * cfg.groupsPerCore);
    EXPECT_EQ(run.image, serialSlotsImage(cfg, run.commitLog));
}

// ---------------------------------------------------------------------
// YCSB logical differential over the real KV structures
// ---------------------------------------------------------------------

TEST(McDifferential, YcsbCommitLogReplaysSeriallyToSameLogicalState)
{
    for (std::size_t cores : {2, 4}) {
        for (SchemeKind kind : {SchemeKind::SLPMT, SchemeKind::FG}) {
            McYcsbConfig cfg;
            cfg.numCores = cores;
            cfg.opsPerCore = 30;
            cfg.valueBytes = 48;
            cfg.seed = 77;
            cfg.sharedPct = 30;
            cfg.sys.scheme = SchemeConfig::forKind(kind);
            cfg.sys.numCores = cores;

            const std::string combo =
                testName(kind) + "_c" + std::to_string(cores);
            const McYcsbResult run = runMcYcsb(cfg);
            ASSERT_TRUE(run.verified) << combo << ": " << run.failure;

            std::string why;
            EXPECT_TRUE(replaySerialOracle(cfg, run.commitLog, &why))
                << combo << ": " << why;
        }
    }
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
