/**
 * @file
 * Differential testing of selective logging against the full-logging
 * baseline: the same seeded YCSB operation mix, executed under SLPMT
 * (log-free + lazy storeT) and under FG (every store logged and
 * eagerly persistent), must leave every data structure in the same
 * logical state. Any divergence means the storeT semantics leaked
 * into the visible behaviour of the structure.
 */

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/pm_system.hh"
#include "workloads/factory.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{
namespace
{

using Shadow = std::map<std::uint64_t, std::vector<std::uint8_t>>;

SystemConfig
systemFor(SchemeKind kind)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(kind);
    return cfg;
}

/** Run the mixed trace; returns the final committed key->value map as
 *  executed (ops on absent keys may be no-ops). */
Shadow
runTrace(PmSystem &sys, Workload &wl,
         const std::vector<YcsbMixedOp> &trace)
{
    Shadow shadow;
    for (const auto &op : trace) {
        switch (op.kind) {
          case YcsbOpKind::Insert:
            wl.insert(sys, op.key, op.value);
            shadow[op.key] = op.value;
            break;
          case YcsbOpKind::Update:
            if (wl.update(sys, op.key, op.value))
                shadow[op.key] = op.value;
            break;
          case YcsbOpKind::Remove:
            if (wl.remove(sys, op.key))
                shadow.erase(op.key);
            break;
        }
    }
    return shadow;
}

/** Full logical-state comparison of two recovered/live structures. */
void
expectSameState(const std::string &workload, PmSystem &a, Workload &wa,
                PmSystem &b, Workload &wb, const Shadow &keys)
{
    EXPECT_EQ(wa.count(a), wb.count(b)) << workload;
    std::vector<std::uint8_t> va, vb;
    for (const auto &[key, expected] : keys) {
        va.clear();
        vb.clear();
        const bool ina = wa.lookup(a, key, &va);
        const bool inb = wb.lookup(b, key, &vb);
        EXPECT_EQ(ina, inb) << workload << " key " << key;
        if (ina && inb) {
            EXPECT_EQ(va, vb) << workload << " key " << key;
            EXPECT_EQ(va, expected) << workload << " key " << key;
        }
    }
    std::string why;
    EXPECT_TRUE(wa.checkConsistency(a, &why)) << workload << ": " << why;
    EXPECT_TRUE(wb.checkConsistency(b, &why)) << workload << ": " << why;
}

void
runDifferential(const std::string &workload, const YcsbMixConfig &mix)
{
    const auto trace = ycsbMixedLoad(mix);

    PmSystem slpmt(systemFor(SchemeKind::SLPMT));
    auto wl_slpmt = makeWorkload(workload);
    wl_slpmt->setup(slpmt);
    const Shadow shadow = runTrace(slpmt, *wl_slpmt, trace);

    PmSystem fg(systemFor(SchemeKind::FG));
    auto wl_fg = makeWorkload(workload);
    wl_fg->setup(fg);
    const Shadow shadow_fg = runTrace(fg, *wl_fg, trace);

    // Same trace, same acceptance decisions: the executed-op shadows
    // themselves must agree before the structures are compared.
    EXPECT_EQ(shadow, shadow_fg) << workload;
    expectSameState(workload, slpmt, *wl_slpmt, fg, *wl_fg, shadow);
}

TEST(Differential, InsertOnlyMixMatchesFullLogging)
{
    YcsbMixConfig mix;
    mix.numOps = 120;
    mix.valueBytes = 64;
    mix.seed = 7;
    for (const auto &workload : allWorkloads())
        runDifferential(workload, mix);
}

TEST(Differential, MixedOpsMatchFullLogging)
{
    YcsbMixConfig mix;
    mix.numOps = 150;
    mix.valueBytes = 48;
    mix.seed = 1234;
    mix.insertPct = 60;
    mix.updatePct = 25;
    mix.removePct = 15;
    for (const auto &workload : allWorkloads())
        runDifferential(workload, mix);
}

TEST(Differential, RemoveHeavyMixMatchFullLogging)
{
    YcsbMixConfig mix;
    mix.numOps = 100;
    mix.valueBytes = 32;
    mix.seed = 99;
    mix.insertPct = 50;
    mix.updatePct = 10;
    mix.removePct = 40;
    for (const auto &workload : allWorkloads())
        runDifferential(workload, mix);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
