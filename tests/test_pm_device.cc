/**
 * @file
 * Unit tests for the persistent-memory device model: ADR durability,
 * WPQ capacity stalls, same-line coalescing, bank-pipelined drain,
 * async (background) persists, and traffic accounting.
 */

#include <gtest/gtest.h>

#include "stats/stats.hh"
#include "mem/dram_device.hh"
#include "mem/pm_device.hh"

namespace slpmt
{
namespace
{

class PmDeviceTest : public ::testing::Test
{
  protected:
    PmConfig cfg;
    StatsRegistry stats;
    PersistTracker tracker;

    std::array<std::uint8_t, cacheLineSize>
    pattern(std::uint8_t seed)
    {
        std::array<std::uint8_t, cacheLineSize> line{};
        for (std::size_t i = 0; i < line.size(); ++i)
            line[i] = static_cast<std::uint8_t>(seed + i);
        return line;
    }
};

TEST_F(PmDeviceTest, EnqueuedWriteIsDurableAcrossCrash)
{
    PmDevice pm(cfg, stats, tracker);
    const auto line = pattern(3);
    pm.persistLine(0x1000, line.data(), 0, PersistKind::LoggedLine, 1);
    pm.crash();  // ADR drains the WPQ
    std::array<std::uint8_t, cacheLineSize> out{};
    pm.peek(0x1000, out.data(), out.size());
    EXPECT_EQ(out, line);
}

TEST_F(PmDeviceTest, WpqSlotsMatchConfig)
{
    PmDevice pm(cfg, stats, tracker);
    EXPECT_EQ(pm.wpqSlots(), 8u);  // 512 B / 64 B
}

TEST_F(PmDeviceTest, BurstBeyondCapacityStalls)
{
    PmDevice pm(cfg, stats, tracker);
    const auto line = pattern(1);
    Cycles total_stall = 0;
    // 16 distinct lines back-to-back at time 0: the 8-slot queue must
    // stall the issuer for the second half.
    for (int i = 0; i < 16; ++i) {
        const auto res = pm.persistLine(0x1000 + i * cacheLineSize,
                                        line.data(), 0,
                                        PersistKind::LoggedLine, 1);
        total_stall += res.stallCycles;
    }
    EXPECT_GT(total_stall, 0u);
    EXPECT_GT(stats.get("pm.wpqStalls"), 0u);
}

TEST_F(PmDeviceTest, SameLineWritesCoalesceInQueue)
{
    PmDevice pm(cfg, stats, tracker);
    const auto line = pattern(2);
    for (int i = 0; i < 10; ++i)
        pm.persistLine(0x2000, line.data(), 0, PersistKind::LoggedLine,
                       1);
    EXPECT_EQ(stats.get("pm.wpqCoalesced"), 9u);
    EXPECT_EQ(stats.get("pm.wpqStalls"), 0u);
}

TEST_F(PmDeviceTest, AsyncPersistNeverStalls)
{
    PmDevice pm(cfg, stats, tracker);
    const auto line = pattern(4);
    for (int i = 0; i < 64; ++i) {
        const auto res = pm.persistLine(
            0x4000 + i * cacheLineSize, line.data(), 0,
            PersistKind::LazyLine, 1, /*sync=*/false);
        EXPECT_EQ(res.stallCycles, 0u);
    }
    EXPECT_EQ(stats.get("pm.wpqStalls"), 0u);
}

TEST_F(PmDeviceTest, AsyncBacklogDelaysLaterSyncPersist)
{
    PmDevice pm(cfg, stats, tracker);
    const auto line = pattern(5);
    for (int i = 0; i < 64; ++i)
        pm.persistLine(0x4000 + i * cacheLineSize, line.data(), 0,
                       PersistKind::LazyLine, 1, /*sync=*/false);
    const auto res = pm.persistLine(0x9000, line.data(), 0,
                                    PersistKind::LoggedLine, 1);
    EXPECT_GT(res.stallCycles, 0u);
}

TEST_F(PmDeviceTest, SpacedWritesDoNotStall)
{
    PmDevice pm(cfg, stats, tracker);
    const auto line = pattern(6);
    const Cycles interval = nsToCycles(cfg.writeLatencyNs);
    for (int i = 0; i < 32; ++i) {
        const auto res = pm.persistLine(
            0x1000 + i * cacheLineSize, line.data(),
            static_cast<Cycles>(i) * interval,
            PersistKind::LoggedLine, 1);
        EXPECT_EQ(res.stallCycles, 0u);
    }
}

TEST_F(PmDeviceTest, TrafficAccounting)
{
    PmDevice pm(cfg, stats, tracker);
    const auto line = pattern(7);
    pm.persistLine(0x1000, line.data(), 0, PersistKind::LoggedLine, 1);
    EXPECT_EQ(stats.get("pm.bytesWritten"), 64u);
    std::uint8_t buf[24] = {};
    pm.persistBytes(0x2000, buf, sizeof(buf), 0, PersistKind::LogRecord,
                    1);
    EXPECT_EQ(stats.get("pm.bytesWritten"), 64u + 24u);
    // Traffic override: framing excluded.
    pm.persistBytes(0x3000, buf, sizeof(buf), 0, PersistKind::LogRecord,
                    1, 16);
    EXPECT_EQ(stats.get("pm.bytesWritten"), 64u + 24u + 16u);
}

TEST_F(PmDeviceTest, ReadLatencyMatchesConfig)
{
    PmDevice pm(cfg, stats, tracker);
    std::array<std::uint8_t, cacheLineSize> out{};
    EXPECT_EQ(pm.readLine(0x1000, out.data()),
              nsToCycles(cfg.readLatencyNs));
}

TEST_F(PmDeviceTest, WriteLatencySweepChangesStallCost)
{
    // Figure 12's knob: a slower media makes saturating bursts slower.
    auto stall_with = [&](std::uint64_t lat_ns) {
        StatsRegistry local;
        PersistTracker t;
        PmConfig c;
        c.writeLatencyNs = lat_ns;
        PmDevice pm(c, local, t);
        const auto line = pattern(8);
        Cycles stall = 0;
        for (int i = 0; i < 32; ++i) {
            stall += pm.persistLine(0x1000 + i * cacheLineSize,
                                    line.data(), 0,
                                    PersistKind::LoggedLine, 1)
                         .stallCycles;
        }
        return stall;
    };
    EXPECT_LT(stall_with(500), stall_with(2300));
}

TEST_F(PmDeviceTest, PersistTrackerLedger)
{
    PmDevice pm(cfg, stats, tracker);
    tracker.enable();
    const auto line = pattern(9);
    pm.persistLine(0x1000, line.data(), 0, PersistKind::LogRecord, 7);
    pm.persistLine(0x2000, line.data(), 0, PersistKind::LoggedLine, 7);
    tracker.disable();
    const auto &ledger = tracker.ledger();
    ASSERT_EQ(ledger.size(), 2u);
    EXPECT_EQ(ledger[0].kind, PersistKind::LogRecord);
    EXPECT_EQ(ledger[1].kind, PersistKind::LoggedLine);
    EXPECT_LT(ledger[0].seq, ledger[1].seq);
    EXPECT_EQ(ledger[0].txnSeq, 7u);
}

TEST(DramDevice, LosesContentsOnCrash)
{
    StatsRegistry stats;
    DramConfig cfg;
    DramDevice dram(cfg, stats);
    std::array<std::uint8_t, cacheLineSize> line{};
    line.fill(0xAB);
    dram.writeLine(0x100, line.data());
    dram.crash();
    std::array<std::uint8_t, cacheLineSize> out{};
    out.fill(1);
    dram.readLine(0x100, out.data());
    for (auto b : out)
        EXPECT_EQ(b, 0);
}

TEST(DramDevice, RowBufferHitIsFaster)
{
    StatsRegistry stats;
    DramConfig cfg;
    DramDevice dram(cfg, stats);
    std::array<std::uint8_t, cacheLineSize> out{};
    const Cycles miss = dram.readLine(0x0, out.data());
    const Cycles hit = dram.readLine(0x40, out.data());  // same row
    EXPECT_LT(hit, miss);
    EXPECT_EQ(stats.get("dram.rowHits"), 1u);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
