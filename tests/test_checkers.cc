/**
 * @file
 * Negative tests for the workload consistency checkers: corrupt each
 * structure's durable state directly and verify the checker notices.
 * A checker that cannot fail would make every crash-recovery test
 * vacuous, so these tests validate the validators.
 */

#include <gtest/gtest.h>

#include "core/pm_system.hh"
#include "test_util.hh"
#include "workloads/factory.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{
namespace
{

struct Rig
{
    explicit Rig(const std::string &name)
        : workload(makeWorkload(name))
    {
        workload->setup(sys);
        ops = ycsbLoad({.numOps = 60, .valueBytes = 32, .seed = 17});
        for (const auto &op : ops)
            workload->insert(sys, op.key, op.value);
        // Flush so corruption via poke is what reads see.
        sys.quiesce();
        sys.hierarchy().crash();  // drop caches; PM image is complete
    }

    bool
    consistent()
    {
        std::string why;
        return workload->checkConsistency(sys, &why);
    }

    PmSystem sys;
    std::unique_ptr<Workload> workload;
    std::vector<YcsbOp> ops;
};

/** Flip one word in the durable image. */
void
clobber(PmSystem &sys, Addr addr, std::uint64_t value)
{
    sys.pm().poke(addr, &value, sizeof(value));
}

TEST(Checkers, CleanStructuresPass)
{
    for (const auto &name : allWorkloads()) {
        Rig rig(name);
        EXPECT_TRUE(rig.consistent()) << name;
        EXPECT_EQ(rig.workload->count(rig.sys), rig.ops.size()) << name;
    }
}

TEST(Checkers, HashtableDetectsChecksumCorruption)
{
    Rig rig("hashtable");
    // Corrupt a node: find one through a durable bucket walk.
    const Addr hdr = rig.sys.peek<Addr>(rig.sys.rootSlotAddr(0));
    const Addr buckets = rig.sys.peek<Addr>(hdr + 16);
    const auto num = rig.sys.peek<std::uint64_t>(hdr + 0);
    for (std::uint64_t b = 0; b < num; ++b) {
        const Addr node = rig.sys.peek<Addr>(buckets + b * 8);
        if (node) {
            clobber(rig.sys, node + 0, 0xBAD);  // key word
            break;
        }
    }
    EXPECT_FALSE(rig.consistent());
}

TEST(Checkers, HashtableDetectsCountDrift)
{
    Rig rig("hashtable");
    const Addr hdr = rig.sys.peek<Addr>(rig.sys.rootSlotAddr(0));
    clobber(rig.sys, hdr + 8, 9999);  // count word
    EXPECT_FALSE(rig.consistent());
}

TEST(Checkers, RbtreeDetectsColorViolation)
{
    Rig rig("rbtree");
    const Addr hdr = rig.sys.peek<Addr>(rig.sys.rootSlotAddr(2));
    const Addr root = rig.sys.peek<Addr>(hdr);
    clobber(rig.sys, root + 32, 1);  // paint the root red
    EXPECT_FALSE(rig.consistent());
}

TEST(Checkers, RbtreeDetectsParentCorruption)
{
    Rig rig("rbtree");
    const Addr hdr = rig.sys.peek<Addr>(rig.sys.rootSlotAddr(2));
    const Addr root = rig.sys.peek<Addr>(hdr);
    const Addr left = rig.sys.peek<Addr>(root + 8);
    ASSERT_NE(left, 0u);
    clobber(rig.sys, left + 24, 0xDEAD);  // left child's parent ptr
    EXPECT_FALSE(rig.consistent());
}

TEST(Checkers, HeapDetectsOrderViolation)
{
    Rig rig("heap");
    const Addr hdr = rig.sys.peek<Addr>(rig.sys.rootSlotAddr(3));
    const Addr arr = rig.sys.peek<Addr>(hdr + 16);
    // Make a child larger than the root.
    clobber(rig.sys, arr + 24, ~0ULL >> 1);  // entry[1].key
    EXPECT_FALSE(rig.consistent());
}

TEST(Checkers, AvlDetectsStaleHeight)
{
    Rig rig("avl");
    const Addr hdr = rig.sys.peek<Addr>(rig.sys.rootSlotAddr(4));
    const Addr root = rig.sys.peek<Addr>(hdr);
    clobber(rig.sys, root + 24, 77);  // height word
    EXPECT_FALSE(rig.consistent());
}

TEST(Checkers, BtreeDetectsKeyDisorder)
{
    Rig rig("kv-btree");
    const Addr hdr = rig.sys.peek<Addr>(rig.sys.rootSlotAddr(5));
    Addr node = rig.sys.peek<Addr>(hdr);
    // Descend to a leaf.
    while (rig.sys.peek<std::uint64_t>(node) == 1 /*internal*/)
        node = rig.sys.peek<Addr>(node + 16 + 7 * 8);
    // Reverse the first two keys of the leaf.
    const auto k0 = rig.sys.peek<std::uint64_t>(node + 16);
    const auto k1 = rig.sys.peek<std::uint64_t>(node + 24);
    ASSERT_LT(k0, k1);
    clobber(rig.sys, node + 16, k1);
    clobber(rig.sys, node + 24, k0);
    EXPECT_FALSE(rig.consistent());
}

TEST(Checkers, CtreeDetectsPathViolation)
{
    Rig rig("kv-ctree");
    const Addr hdr = rig.sys.peek<Addr>(rig.sys.rootSlotAddr(6));
    const Addr root = rig.sys.peek<Addr>(hdr);
    ASSERT_EQ(rig.sys.peek<std::uint64_t>(root), 1u);  // internal
    // Swap the two children: every leaf key now disagrees with its
    // path bit.
    const Addr c0 = rig.sys.peek<Addr>(root + 16);
    const Addr c1 = rig.sys.peek<Addr>(root + 24);
    clobber(rig.sys, root + 16, c1);
    clobber(rig.sys, root + 24, c0);
    EXPECT_FALSE(rig.consistent());
}

TEST(Checkers, RtreeDetectsPrefixCorruption)
{
    Rig rig("kv-rtree");
    const Addr hdr = rig.sys.peek<Addr>(rig.sys.rootSlotAddr(7));
    Addr node = rig.sys.peek<Addr>(hdr);
    ASSERT_EQ(rig.sys.peek<std::uint64_t>(node), 1u);  // internal root
    // Deepen the root's prefix claim beyond the key space.
    clobber(rig.sys, node + 8, 17);
    EXPECT_FALSE(rig.consistent());
}

TEST(Checkers, LookupMissesAbsentKeys)
{
    for (const auto &name : allWorkloads()) {
        Rig rig(name);
        // Keys not in the trace (trace keys are odd via `| 1`).
        for (std::uint64_t k = 2; k < 40; k += 2)
            EXPECT_FALSE(rig.workload->lookup(rig.sys, k, nullptr))
                << name;
    }
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
