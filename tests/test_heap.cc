/**
 * @file
 * Unit tests for the persistent-heap allocator: first-fit behaviour,
 * free-range coalescing, liveness queries, and the post-crash GC
 * rebuild that reclaims transactions' leaked allocations.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "stats/stats.hh"
#include "core/heap.hh"

namespace slpmt
{
namespace
{

class HeapTest : public ::testing::Test
{
  protected:
    HeapTest() : heap(0x1000, 64 * 1024, stats) {}

    StatsRegistry stats;
    PersistentHeap heap;
};

TEST_F(HeapTest, AllocationsAreDisjointAndAligned)
{
    std::vector<std::pair<Addr, Bytes>> allocs;
    for (Bytes size : {8u, 24u, 40u, 100u, 7u, 1u}) {
        const Addr a = heap.alloc(size);
        EXPECT_EQ(a % wordSize, 0u);
        for (const auto &[b, s] : allocs) {
            const bool disjoint = a + size <= b || b + s <= a;
            EXPECT_TRUE(disjoint);
        }
        allocs.emplace_back(a, size);
    }
}

TEST_F(HeapTest, FirstFitReusesFreedHole)
{
    const Addr a = heap.alloc(64);
    heap.alloc(64);  // keep a barrier after the hole
    heap.free(a);
    EXPECT_EQ(heap.alloc(64), a);
}

TEST_F(HeapTest, FreeCoalescesNeighbours)
{
    const Addr a = heap.alloc(64);
    const Addr b = heap.alloc(64);
    const Addr c = heap.alloc(64);
    heap.alloc(64);  // barrier
    heap.free(a);
    heap.free(c);
    heap.free(b);  // middle: coalesces with both
    EXPECT_EQ(heap.alloc(192), a);
}

TEST_F(HeapTest, IsLiveAndAllocationBase)
{
    const Addr a = heap.alloc(40);
    EXPECT_TRUE(heap.isLive(a));
    EXPECT_TRUE(heap.isLive(a + 39));
    EXPECT_FALSE(heap.isLive(a + 40));
    EXPECT_EQ(heap.allocationBase(a + 10), a);
}

TEST_F(HeapTest, DoubleFreePanics)
{
    const Addr a = heap.alloc(8);
    heap.free(a);
    EXPECT_THROW(heap.free(a), PanicError);
}

TEST_F(HeapTest, ExhaustionIsFatal)
{
    heap.alloc(60 * 1024);
    EXPECT_THROW(heap.alloc(8 * 1024), FatalError);
}

TEST_F(HeapTest, GcReclaimsUnreachable)
{
    const Addr keep1 = heap.alloc(40, 1);
    const Addr leak1 = heap.alloc(40, 2);
    const Addr keep2 = heap.alloc(40, 2);
    const Addr leak2 = heap.alloc(40, 3);
    (void)leak1;
    (void)leak2;
    const std::size_t reclaimed = heap.rebuild({keep1, keep2});
    EXPECT_EQ(reclaimed, 2u);
    EXPECT_EQ(heap.liveCount(), 2u);
    EXPECT_TRUE(heap.isLive(keep1));
    EXPECT_FALSE(heap.isLive(leak1));
    // Reclaimed space is allocatable again.
    heap.alloc(40);
}

TEST_F(HeapTest, AllocationsSinceFiltersByTxn)
{
    heap.alloc(8, 5);
    const Addr b = heap.alloc(8, 9);
    const auto since = heap.allocationsSince(5);
    ASSERT_EQ(since.size(), 1u);
    EXPECT_EQ(since[0], b);
}

TEST_F(HeapTest, LiveBytesTracksRoundedSizes)
{
    heap.alloc(7);   // rounds to 8
    heap.alloc(40);
    EXPECT_EQ(heap.liveBytes(), 48u);
}

TEST_F(HeapTest, ResetReturnsToBlankSlate)
{
    heap.alloc(1024);
    heap.reset();
    EXPECT_EQ(heap.liveCount(), 0u);
    EXPECT_EQ(heap.alloc(1024), 0x1000u);
}

TEST_F(HeapTest, StressRandomAllocFree)
{
    StatsRegistry local;
    PersistentHeap heap(0x1000, 4 * 1024 * 1024, local);
    Rng rng(11);
    std::vector<std::pair<Addr, Bytes>> live;
    for (int i = 0; i < 5000; ++i) {
        if (live.empty() || rng.below(100) < 60) {
            const Bytes size = 8 + rng.below(256);
            const Addr a = heap.alloc(size);
            for (const auto &[b, s] : live) {
                ASSERT_TRUE(a + size <= b || b + s <= a)
                    << "overlapping allocation";
            }
            live.emplace_back(a, size);
        } else {
            const std::size_t idx = rng.below(live.size());
            heap.free(live[idx].first);
            live.erase(live.begin() + static_cast<long>(idx));
        }
    }
    EXPECT_EQ(heap.liveCount(), live.size());
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
