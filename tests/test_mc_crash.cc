/**
 * @file
 * Multicore crash-point sweeps (sampled tier-1 slice) and the
 * cross-core acceptance signals: a shared-key 8-core run must record
 * coherence invalidations and txn-ID-observed remote lazy drains.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "multicore/mc_crash.hh"
#include "multicore/mc_ycsb.hh"
#include "test_util.hh"

namespace slpmt
{
namespace
{

McCrashSweepConfig
sweepConfig(SchemeKind kind, LoggingStyle style, std::size_t cores)
{
    McCrashSweepConfig cfg;
    cfg.scheme = kind;
    cfg.style = style;
    cfg.run.workload = "hashtable";
    cfg.run.numCores = cores;
    cfg.run.opsPerCore = 30;
    cfg.run.valueBytes = 128;
    cfg.run.seed = 42;
    cfg.run.sharedPct = 25;
    cfg.maxPoints = 14;
    cfg.tinyCache = true;  // mid-txn evictions give replay real work
    cfg.workers = 2;
    return cfg;
}

void
expectCleanSweep(SchemeKind kind, LoggingStyle style,
                 std::size_t cores)
{
    const McCrashSweepConfig cfg = sweepConfig(kind, style, cores);
    const McCrashSweepReport report = runMcCrashSweep(cfg);
    EXPECT_GT(report.traceStores, 0u);
    EXPECT_GT(report.pointsExplored(), 2u);
    // Redo is a no-steal design: a crash between two stores never
    // lands inside the commit window where its log replays, so the
    // replay assertion is meaningful for undo only (matches the
    // single-core sweep suite).
    if (style == LoggingStyle::Undo) {
        EXPECT_GT(report.replayedRecordsTotal(), 0u);
    }
    EXPECT_EQ(report.violationCount(), 0u)
        << report.violationsText();
}

TEST(McCrashSweep, SlpmtUndoTwoCores)
{
    expectCleanSweep(SchemeKind::SLPMT, LoggingStyle::Undo, 2);
}

TEST(McCrashSweep, SlpmtUndoFourCores)
{
    expectCleanSweep(SchemeKind::SLPMT, LoggingStyle::Undo, 4);
}

TEST(McCrashSweep, SlpmtRedoTwoCores)
{
    expectCleanSweep(SchemeKind::SLPMT, LoggingStyle::Redo, 2);
}

TEST(McCrashSweep, FgUndoTwoCores)
{
    expectCleanSweep(SchemeKind::FG, LoggingStyle::Undo, 2);
}

/** The log-free index structures under interleaved multi-core crash
 *  sweeps: machine-wide power failures must still leave exactly the
 *  per-op committed effects, publication stores included. */
TEST(McCrashSweep, IndexStructuresSurviveInterleavedCrashes)
{
    for (const std::string workload : {"skiplist", "blinktree"}) {
        McCrashSweepConfig cfg =
            sweepConfig(SchemeKind::SLPMT, LoggingStyle::Undo, 2);
        cfg.run.workload = workload;
        cfg.run.opsPerCore = 20;
        cfg.maxPoints = 10;
        const McCrashSweepReport report = runMcCrashSweep(cfg);
        EXPECT_GT(report.traceStores, 0u) << workload;
        EXPECT_GT(report.pointsExplored(), 2u) << workload;
        EXPECT_EQ(report.violationCount(), 0u)
            << workload << ":\n" << report.violationsText();
    }
}

TEST(McCrashSweep, ReproModeReplaysOnePoint)
{
    const McCrashSweepConfig cfg =
        sweepConfig(SchemeKind::SLPMT, LoggingStyle::Undo, 2);
    const std::uint64_t total = countMcTraceStores(cfg);
    ASSERT_GT(total, 2u);

    const McCrashPointOutcome mid = runMcCrashPoint(cfg, total / 2);
    EXPECT_TRUE(mid.fired);
    EXPECT_TRUE(mid.violations.empty()) << mid.violations[0];

    // Sentinel 0: crash after the whole run completed.
    const McCrashPointOutcome done = runMcCrashPoint(cfg, 0);
    EXPECT_FALSE(done.fired);
    EXPECT_EQ(done.committedOps, 2 * cfg.run.opsPerCore);
    EXPECT_TRUE(done.violations.empty()) << done.violations[0];
}

// ---------------------------------------------------------------------
// Acceptance: the 8-core shared-key configuration exercises the
// cross-core paths the subsystem exists for.
// ---------------------------------------------------------------------

TEST(McCrashSweep, EightCoreSharedKeysExerciseCrossCorePaths)
{
    McYcsbConfig cfg;
    cfg.numCores = 8;
    cfg.opsPerCore = 40;
    cfg.valueBytes = 48;
    cfg.seed = 42;
    cfg.sharedPct = 40;

    const McYcsbResult run = runMcYcsb(cfg);
    ASSERT_TRUE(run.verified) << run.failure;

    const StatsSnapshot d =
        StatsRegistry::delta(run.statsBefore, run.statsAfter);
    EXPECT_GT(d.at("multicore.invalidations"), 0u);
    EXPECT_GT(d.at("multicore.remoteDrains.idObserved"), 0u);
    EXPECT_GT(d.at("multicore.remoteHits"), 0u);
    EXPECT_GT(d.at("multicore.ctxSwitchDrains"), 0u);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
