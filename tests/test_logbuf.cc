/**
 * @file
 * Unit tests for the four-tier coalescing log buffer (Section III-B2):
 * buddy coalescing across tiers, capacity-triggered drains, per-line
 * flush on eviction, lazy-record discard, and the Figure 6 record
 * sizes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "stats/stats.hh"
#include "core/pm_system.hh"
#include "logbuf/log_buffer.hh"

namespace slpmt
{
namespace
{

/** Sink capturing drained records (bound via the devirtualized
 *  LogBuffer::setSink — no interface class to inherit). */
class CaptureSink
{
  public:
    Cycles
    persistRecord(const LogRecord &rec, Cycles)
    {
        drained.push_back(rec);
        return 10;
    }

    std::vector<LogRecord> drained;
};

class LogBufferTest : public ::testing::Test
{
  protected:
    LogBufferTest() : buf(stats) { buf.setSink(&sink); }

    void
    insertWordAt(Addr addr, std::uint8_t fill = 0)
    {
        std::uint8_t word[wordSize];
        std::fill(word, word + wordSize, fill);
        buf.insertWord(addr, word, 0, 1, 0);
    }

    StatsRegistry stats;
    CaptureSink sink;
    LogBuffer buf;
};

TEST_F(LogBufferTest, RecordWireSizesMatchFigure6)
{
    LogRecord rec;
    rec.words = 1;
    EXPECT_EQ(rec.wireBytes(), 16u);
    rec.words = 2;
    EXPECT_EQ(rec.wireBytes(), 24u);
    rec.words = 4;
    EXPECT_EQ(rec.wireBytes(), 40u);
    rec.words = 8;
    EXPECT_EQ(rec.wireBytes(), 72u);
}

TEST_F(LogBufferTest, SingleWordLandsInTierZero)
{
    insertWordAt(0x1000);
    EXPECT_EQ(buf.tier(0).size(), 1u);
    EXPECT_EQ(buf.size(), 1u);
}

TEST_F(LogBufferTest, BuddyWordsCoalesceUpward)
{
    insertWordAt(0x1000);
    insertWordAt(0x1008);  // buddy of 0x1000 at the 16-byte span
    EXPECT_EQ(buf.tier(0).size(), 0u);
    ASSERT_EQ(buf.tier(1).size(), 1u);
    EXPECT_EQ(buf.tier(1)[0].base, 0x1000u);
    EXPECT_EQ(buf.tier(1)[0].words, 2u);
    EXPECT_EQ(stats.get("logbuf.coalesces"), 1u);
}

TEST_F(LogBufferTest, NonBuddyWordsDoNotCoalesce)
{
    insertWordAt(0x1008);
    insertWordAt(0x1010);  // adjacent but different 16-byte span
    EXPECT_EQ(buf.tier(0).size(), 2u);
    EXPECT_EQ(stats.get("logbuf.coalesces"), 0u);
}

TEST_F(LogBufferTest, FullLineCoalescesThroughAllTiers)
{
    for (std::size_t w = 0; w < wordsPerLine; ++w)
        insertWordAt(0x1000 + w * wordSize,
                     static_cast<std::uint8_t>(w));
    // 8 words -> one full-line record in the top tier.
    EXPECT_EQ(buf.tier(0).size(), 0u);
    EXPECT_EQ(buf.tier(1).size(), 0u);
    EXPECT_EQ(buf.tier(2).size(), 0u);
    ASSERT_EQ(buf.tier(3).size(), 1u);
    const LogRecord &rec = buf.tier(3)[0];
    EXPECT_EQ(rec.base, 0x1000u);
    EXPECT_EQ(rec.words, 8u);
    // Data assembled in address order.
    for (std::size_t w = 0; w < wordsPerLine; ++w)
        EXPECT_EQ(rec.data[w * wordSize],
                  static_cast<std::uint8_t>(w));
}

TEST_F(LogBufferTest, CoalescedDataPreservedOutOfOrder)
{
    std::uint8_t lo[wordSize];
    std::uint8_t hi[wordSize];
    std::fill(lo, lo + wordSize, 0x11);
    std::fill(hi, hi + wordSize, 0x22);
    // Insert the high word first.
    buf.insertWord(0x1008, hi, 0, 1, 0);
    buf.insertWord(0x1000, lo, 0, 1, 0);
    ASSERT_EQ(buf.tier(1).size(), 1u);
    const LogRecord &rec = buf.tier(1)[0];
    EXPECT_EQ(rec.data[0], 0x11);
    EXPECT_EQ(rec.data[wordSize], 0x22);
}

TEST_F(LogBufferTest, TierDrainsWhenFull)
{
    // Nine non-coalescable words: the ninth insertion drains tier 0.
    for (int i = 0; i <= 8; ++i)
        insertWordAt(0x1000 + static_cast<Addr>(i) * 1024);
    EXPECT_EQ(sink.drained.size(), LogBuffer::tierCapacity);
    EXPECT_EQ(buf.tier(0).size(), 1u);  // the ninth record
    EXPECT_EQ(stats.get("logbuf.tierDrains"), 1u);
}

TEST_F(LogBufferTest, InsertLineGoesToTopTier)
{
    std::uint8_t line[cacheLineSize] = {};
    buf.insertLine(0x2000, line, 0, 1, 0);
    EXPECT_EQ(buf.tier(3).size(), 1u);
}

TEST_F(LogBufferTest, TopTierDrainsWhenFull)
{
    std::uint8_t line[cacheLineSize] = {};
    for (int i = 0; i <= 8; ++i)
        buf.insertLine(0x2000 + static_cast<Addr>(i) * cacheLineSize,
                       line, 0, 1, 0);
    EXPECT_EQ(sink.drained.size(), LogBuffer::tierCapacity);
}

TEST_F(LogBufferTest, FlushLinePersistsOnlyThatLine)
{
    insertWordAt(0x1000);
    insertWordAt(0x1008);
    insertWordAt(0x2000);
    buf.flushLine(0x1020, 0);  // same line as 0x1000/0x1008
    ASSERT_EQ(sink.drained.size(), 1u);
    EXPECT_EQ(sink.drained[0].base, 0x1000u);
    EXPECT_EQ(sink.drained[0].words, 2u);
    EXPECT_EQ(buf.size(), 1u);  // 0x2000 remains
}

TEST_F(LogBufferTest, DrainAllEmptiesEveryTier)
{
    insertWordAt(0x1000);
    insertWordAt(0x1008);
    insertWordAt(0x3000);
    std::uint8_t line[cacheLineSize] = {};
    buf.insertLine(0x4000, line, 0, 1, 0);
    buf.drainAll(0);
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(sink.drained.size(), 3u);
}

TEST_F(LogBufferTest, DiscardIfRemovesWithoutPersisting)
{
    insertWordAt(0x1000);
    insertWordAt(0x2000);
    const std::size_t discarded =
        buf.discardIf([](Addr line) { return line == 0x1000; });
    EXPECT_EQ(discarded, 1u);
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_TRUE(sink.drained.empty());
    EXPECT_EQ(stats.get("logbuf.recordsDiscarded"), 1u);
}

TEST_F(LogBufferTest, ClearDropsEverything)
{
    insertWordAt(0x1000);
    insertWordAt(0x2000);
    buf.clear();
    EXPECT_TRUE(buf.empty());
    EXPECT_TRUE(sink.drained.empty());
}

TEST_F(LogBufferTest, ForEachRecordMutates)
{
    insertWordAt(0x1000, 0x01);
    buf.forEachRecord([](LogRecord &rec) { rec.data[0] = 0xFF; });
    buf.drainAll(0);
    ASSERT_EQ(sink.drained.size(), 1u);
    EXPECT_EQ(sink.drained[0].data[0], 0xFF);
}

TEST_F(LogBufferTest, CoalescedRecordsMeetAcrossTierBoundary)
{
    // Two double-word records assembled independently in tier 1 must
    // recognise each other as buddies of the 32-byte span and promote
    // to tier 2 — the buddy test has to work on *coalesced* records,
    // not just raw word insertions.
    insertWordAt(0x1000, 0xA0);
    insertWordAt(0x1008, 0xA1);  // -> tier 1 record [0x1000, 2 words]
    insertWordAt(0x1010, 0xA2);
    EXPECT_EQ(buf.tier(1).size(), 1u);
    EXPECT_EQ(buf.tier(0).size(), 1u);
    insertWordAt(0x1018, 0xA3);  // completes [0x1010, 2] -> tier 2
    EXPECT_EQ(buf.tier(0).size(), 0u);
    EXPECT_EQ(buf.tier(1).size(), 0u);
    ASSERT_EQ(buf.tier(2).size(), 1u);
    const LogRecord &rec = buf.tier(2)[0];
    EXPECT_EQ(rec.base, 0x1000u);
    EXPECT_EQ(rec.words, 4u);
    for (std::size_t w = 0; w < 4; ++w)
        EXPECT_EQ(rec.data[w * wordSize],
                  static_cast<std::uint8_t>(0xA0 + w));
}

TEST_F(LogBufferTest, InterleavedLinesCoalesceIndependently)
{
    // Words of two different cache lines arriving interleaved must
    // each cascade to their own full-line record; buddy matching may
    // never mix lines.
    for (std::size_t w = 0; w < wordsPerLine; ++w) {
        insertWordAt(0x1000 + w * wordSize,
                     static_cast<std::uint8_t>(w));
        insertWordAt(0x2000 + w * wordSize,
                     static_cast<std::uint8_t>(0x80 + w));
    }
    ASSERT_EQ(buf.tier(3).size(), 2u);
    EXPECT_EQ(buf.tier(0).size() + buf.tier(1).size() +
                  buf.tier(2).size(),
              0u);
    for (const LogRecord &rec : buf.tier(3)) {
        ASSERT_EQ(rec.words, 8u);
        const std::uint8_t first =
            rec.base == 0x1000u ? 0x00 : 0x80;
        for (std::size_t w = 0; w < wordsPerLine; ++w)
            EXPECT_EQ(rec.data[w * wordSize],
                      static_cast<std::uint8_t>(first + w));
    }
}

TEST_F(LogBufferTest, MiddleTierOverflowSpillsAtRecordGranularity)
{
    // Nine non-coalescable double-word records: the ninth fills tier 1
    // past capacity and the tier spills to the sink as 2-word records
    // (24-byte wire size), not as padded full lines.
    for (int i = 0; i <= 8; ++i) {
        const Addr base = 0x1000 + static_cast<Addr>(i) * 1024;
        insertWordAt(base);
        insertWordAt(base + wordSize);
    }
    EXPECT_EQ(sink.drained.size(), LogBuffer::tierCapacity);
    for (const LogRecord &rec : sink.drained) {
        EXPECT_EQ(rec.words, 2u);
        EXPECT_EQ(rec.wireBytes(), 24u);
    }
    EXPECT_EQ(buf.tier(1).size(), 1u);
}

TEST_F(LogBufferTest, TopTierOverflowSpillsFullLineRecords)
{
    std::uint8_t line[cacheLineSize];
    for (int i = 0; i <= 8; ++i) {
        std::fill(line, line + cacheLineSize,
                  static_cast<std::uint8_t>(i));
        buf.insertLine(0x2000 + static_cast<Addr>(i) * cacheLineSize,
                       line, 0, 1, 0);
    }
    ASSERT_EQ(sink.drained.size(), LogBuffer::tierCapacity);
    for (std::size_t i = 0; i < sink.drained.size(); ++i) {
        const LogRecord &rec = sink.drained[i];
        EXPECT_EQ(rec.words, 8u);
        EXPECT_EQ(rec.wireBytes(), 72u);
        // Oldest-first spill, data intact.
        EXPECT_EQ(rec.base, 0x2000u + i * cacheLineSize);
        EXPECT_EQ(rec.data[0], static_cast<std::uint8_t>(i));
    }
}

TEST_F(LogBufferTest, DrainAllPersistsSmallestTierFirst)
{
    // One record in every tier; a full drain (the context-switch and
    // commit path) must emit tier 0 -> tier 3, smallest spans first.
    insertWordAt(0xA000);
    insertWordAt(0xB000);
    insertWordAt(0xB008);
    for (std::size_t w = 0; w < 4; ++w)
        insertWordAt(0xC000 + w * wordSize);
    std::uint8_t line[cacheLineSize] = {};
    buf.insertLine(0xD000, line, 0, 1, 0);

    buf.drainAll(0);
    EXPECT_TRUE(buf.empty());
    ASSERT_EQ(sink.drained.size(), 4u);
    EXPECT_EQ(sink.drained[0].words, 1u);
    EXPECT_EQ(sink.drained[0].base, 0xA000u);
    EXPECT_EQ(sink.drained[1].words, 2u);
    EXPECT_EQ(sink.drained[1].base, 0xB000u);
    EXPECT_EQ(sink.drained[2].words, 4u);
    EXPECT_EQ(sink.drained[2].base, 0xC000u);
    EXPECT_EQ(sink.drained[3].words, 8u);
    EXPECT_EQ(sink.drained[3].base, 0xD000u);
}

/** Property sweep: any set of distinct words per line coalesces into
 *  the minimal buddy decomposition. */
class LogBufferPatternTest : public ::testing::TestWithParam<std::uint8_t>
{
};

TEST_P(LogBufferPatternTest, BuddyDecompositionIsMinimal)
{
    const std::uint8_t mask = GetParam();
    StatsRegistry stats;
    CaptureSink sink;
    LogBuffer buf(stats);
    buf.setSink(&sink);
    std::uint8_t word[wordSize] = {};
    std::size_t inserted = 0;
    for (std::size_t w = 0; w < wordsPerLine; ++w) {
        if (mask & (1u << w)) {
            buf.insertWord(0x1000 + w * wordSize, word, 0, 1, 0);
            ++inserted;
        }
    }
    // Collect the covered words back from the tiers.
    std::uint8_t covered = 0;
    std::size_t records = 0;
    for (std::size_t t = 0; t < LogBuffer::tierCount; ++t) {
        for (const auto &rec : buf.tier(t)) {
            ++records;
            const std::size_t first = wordIndex(rec.base);
            for (std::size_t w = 0; w < rec.words; ++w)
                covered |= static_cast<std::uint8_t>(
                    1u << (first + w));
            // Records stay buddy-aligned.
            EXPECT_EQ(rec.base % rec.spanBytes(), 0u);
        }
    }
    EXPECT_EQ(covered, mask);
    // Minimality: the number of records equals the number of maximal
    // aligned power-of-two blocks in the mask (popcount of the mask's
    // binary "carry" structure). For buddy systems this equals the
    // number of 1-bits after greedy pairing, which we compute directly.
    std::size_t expected = 0;
    std::uint8_t m = mask;
    for (std::size_t span = 8; span >= 1; span /= 2) {
        const std::size_t group_bits = span;
        for (std::size_t g = 0; g < wordsPerLine / span; ++g) {
            std::uint8_t group_mask = 0;
            for (std::size_t w = 0; w < group_bits; ++w)
                group_mask |= static_cast<std::uint8_t>(
                    1u << (g * span + w));
            if ((m & group_mask) == group_mask) {
                ++expected;
                m &= static_cast<std::uint8_t>(~group_mask);
            }
        }
        if (span == 1)
            break;
    }
    EXPECT_EQ(records, expected) << "mask=" << int(mask);
}

INSTANTIATE_TEST_SUITE_P(AllMasks, LogBufferPatternTest,
                         ::testing::Range<std::uint8_t>(0, 255));

/**
 * Section V-C: before a thread is switched out, the kernel drains the
 * log buffer so a crash while it is descheduled cannot lose undo
 * records whose data lines might still overflow. The drain appends in
 * tier order and leaves the records recoverable.
 */
TEST(LogBufferContextSwitch, DrainPersistsRecordsBeforeDeschedule)
{
    PmSystem sys;
    TxnEngine &eng = sys.engine();
    const Addr a = sys.heap().alloc(cacheLineSize);
    const Addr b = sys.heap().alloc(cacheLineSize);

    sys.txBegin();
    sys.writeT<std::uint64_t>(a, 0x1111, {});            // 1-word record
    sys.writeT<std::uint64_t>(b, 0x2222, {});            // buddy pair
    sys.writeT<std::uint64_t>(b + wordSize, 0x3333, {});
    ASSERT_FALSE(eng.buffer().empty());
    const std::uint64_t appended_before =
        sys.stats().get("undolog.appends");

    eng.contextSwitch();
    EXPECT_TRUE(eng.buffer().empty());
    EXPECT_GE(sys.stats().get("undolog.appends"), appended_before + 2);

    // Smallest tiers drain first: the single word precedes the pair.
    const auto records = eng.logArea().scanValid();
    ASSERT_GE(records.size(), 2u);
    EXPECT_EQ(records[records.size() - 2].words, 1u);
    EXPECT_EQ(records[records.size() - 1].words, 2u);

    // A crash while descheduled must roll the transaction back from
    // the drained records alone.
    sys.crash();
    EXPECT_GE(sys.recoverHardware(), 2u);
    std::uint64_t val = 0;
    sys.engine().load(a, &val, sizeof(val));
    EXPECT_EQ(val, 0u);  // pre-transaction value restored
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
