/**
 * @file
 * The multicore machine: topology validation, single-core equivalence
 * with PmSystem, the coherence directory (invalidations, downgrades,
 * remote-forced lazy drains, conflict aborts), the Section V-C
 * context-switch drain, scheduler determinism, and the merged
 * per-core statistics namespace.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/pm_system.hh"
#include "multicore/machine.hh"
#include "multicore/mc_ycsb.hh"
#include "multicore/scheduler.hh"
#include "test_util.hh"

namespace slpmt
{
namespace
{

SystemConfig
mcConfig(std::size_t cores,
         SchemeKind kind = SchemeKind::SLPMT,
         LoggingStyle style = LoggingStyle::Undo)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(kind);
    cfg.style = style;
    cfg.numCores = cores;
    return cfg;
}

/** One committed transaction writing @p words distinct lines. */
void
commitLines(PmContext &ctx, Addr base, std::size_t lines,
            std::uint64_t salt, StoreFlags flags = {})
{
    ctx.txBegin();
    for (std::size_t i = 0; i < lines; ++i)
        ctx.writeT<std::uint64_t>(base + i * cacheLineSize,
                                  mix64Salted(i, salt), flags);
    ctx.txCommit();
}

// ---------------------------------------------------------------------
// Topology validation
// ---------------------------------------------------------------------

TEST(McTopology, PmSystemRejectsMultipleCores)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    EXPECT_THROW(PmSystem sys(cfg), PanicError);
}

TEST(McTopology, McMachineValidatesCoreCount)
{
    EXPECT_THROW(McMachine m(mcConfig(0)), PanicError);
    EXPECT_THROW(McMachine m(mcConfig(17)), PanicError);
    McMachine ok(mcConfig(1));
    EXPECT_EQ(ok.numCores(), 1u);
    McMachine wide(mcConfig(16));
    EXPECT_EQ(wide.numCores(), 16u);
}

// ---------------------------------------------------------------------
// Single-core equivalence: the one-core McMachine must behave exactly
// like PmSystem (the directory has no peers to probe).
// ---------------------------------------------------------------------

TEST(McEquivalence, OneCoreMachineMatchesPmSystem)
{
    const SystemConfig cfg = mcConfig(1);

    PmSystem sys(cfg);
    const Addr sys_base = sys.heap().alloc(8 * cacheLineSize);
    for (int t = 0; t < 4; ++t)
        commitLines(sys, sys_base, 6, 0x11 + t);
    sys.quiesce();

    McMachine m(cfg);
    const Addr mc_base = m.heap().alloc(8 * cacheLineSize);
    ASSERT_EQ(mc_base, sys_base);  // deterministic first-fit layout
    for (int t = 0; t < 4; ++t)
        commitLines(m.context(0), mc_base, 6, 0x11 + t);
    m.quiesce();

    EXPECT_EQ(m.core(0).cycles(), sys.cycles());
    EXPECT_EQ(m.makespan(), sys.cycles());

    const StatsSnapshot mc = m.snapshot();
    const StatsSnapshot sc = sys.stats().snapshot();
    EXPECT_EQ(mc.at("pm.bytesWritten"), sc.at("pm.bytesWritten"));
    EXPECT_EQ(mc.at("pm.dataBytesWritten"), sc.at("pm.dataBytesWritten"));
    EXPECT_EQ(mc.at("core0.txn.committed"), sc.at("txn.committed"));
    EXPECT_EQ(mc.at("core0.logbuf.inserts"), sc.at("logbuf.inserts"));
    EXPECT_EQ(mc.at("multicore.probes"), 0u);
    EXPECT_EQ(mc.at("multicore.invalidations"), 0u);
}

// ---------------------------------------------------------------------
// Coherence directory: MESI side
// ---------------------------------------------------------------------

TEST(McCoherence, RemoteWriteInvalidatesAndTransfersDirtyData)
{
    McMachine m(mcConfig(2));
    const Addr base = m.heap().alloc(4 * cacheLineSize);

    // Core 0 dirties a line inside a committed transaction.
    commitLines(m.context(0), base, 1, 0xaa);
    const std::uint64_t expected = mix64Salted(0, 0xaa);
    EXPECT_EQ(m.context(0).read<std::uint64_t>(base), expected);

    const StatsSnapshot before = m.snapshot();

    // Core 1 overwrites the same line: the directory must find core
    // 0's private copy, surrender it, and invalidate it there.
    m.context(1).txBegin();
    m.context(1).write<std::uint64_t>(base, 99u);
    m.context(1).txCommit();

    const StatsSnapshot after = m.snapshot();
    EXPECT_GT(after.at("multicore.probes"), before.at("multicore.probes"));
    EXPECT_GT(after.at("multicore.remoteHits"),
              before.at("multicore.remoteHits"));
    EXPECT_GT(after.at("multicore.invalidations"),
              before.at("multicore.invalidations"));

    // Both cores agree on the new value (coherent transfer).
    EXPECT_EQ(m.context(1).read<std::uint64_t>(base), 99u);
    EXPECT_EQ(m.context(0).read<std::uint64_t>(base), 99u);
}

TEST(McCoherence, RemoteReadDowngradesDirtyLine)
{
    McMachine m(mcConfig(2));
    const Addr base = m.heap().alloc(4 * cacheLineSize);

    // A non-transactional store leaves the line dirty in core 0's
    // private cache (an eager commit would have persisted and cleaned
    // it, and clean metadata-free copies stay put on remote loads).
    m.context(0).write<std::uint64_t>(base, 0xbeefu);

    const StatsSnapshot before = m.snapshot();
    EXPECT_EQ(m.context(1).read<std::uint64_t>(base), 0xbeefu);
    const StatsSnapshot after = m.snapshot();

    EXPECT_GT(after.at("multicore.downgrades"),
              before.at("multicore.downgrades"));
    EXPECT_EQ(after.at("multicore.invalidations"),
              before.at("multicore.invalidations"));
}

// ---------------------------------------------------------------------
// Coherence directory: the paper's cross-transaction observation rules
// ---------------------------------------------------------------------

TEST(McCoherence, RemoteStoreSignatureHitForcesLazyDrain)
{
    McMachine m(mcConfig(2));
    const Addr base = m.heap().alloc(4 * cacheLineSize);

    // Core 0 commits a lazy transaction: data stays volatile, the
    // signature remembers its lines.
    commitLines(m.context(0), base, 2, 0xcc, StoreFlags{.lazy = true});
    ASSERT_GT(m.core(0).engine().lazyOutstandingCount(), 0u);

    // Core 1 *stores* to one of those lines: the store-triggered
    // signature check (Section III-C3) fires across the directory.
    m.context(1).txBegin();
    m.context(1).write<std::uint64_t>(base, 7u);
    m.context(1).txCommit();

    const StatsSnapshot s = m.snapshot();
    EXPECT_GE(s.at("multicore.remoteDrains.sigHit"), 1u);
    EXPECT_GE(s.at("core0.txn.lazyDrain.remoteSigHit"), 1u);
    EXPECT_EQ(m.core(0).engine().lazyOutstandingCount(), 0u);
}

TEST(McCoherence, RemoteReadOfOwnedLineForcesLazyDrain)
{
    McMachine m(mcConfig(2));
    const Addr base = m.heap().alloc(4 * cacheLineSize);

    commitLines(m.context(0), base, 2, 0xdd, StoreFlags{.lazy = true});
    ASSERT_GT(m.core(0).engine().lazyOutstandingCount(), 0u);

    // Core 1 *loads* one of those lines: loads skip the signature
    // check, but the line-owner txn-ID check still observes the
    // committed transaction's metadata on the transferred line.
    EXPECT_EQ(m.context(1).read<std::uint64_t>(base),
              mix64Salted(0, 0xdd));

    const StatsSnapshot s = m.snapshot();
    EXPECT_GE(s.at("multicore.remoteDrains.idObserved"), 1u);
    EXPECT_GE(s.at("core0.txn.lazyDrain.remoteIdObserved"), 1u);
    EXPECT_EQ(s.at("multicore.remoteDrains.sigHit"), 0u);
    EXPECT_EQ(m.core(0).engine().lazyOutstandingCount(), 0u);
}

TEST(McCoherence, ProbeAbortsConflictingInFlightTransaction)
{
    McMachine m(mcConfig(2));
    const Addr base = m.heap().alloc(4 * cacheLineSize);

    std::vector<std::size_t> aborted;
    m.setConflictHandler([&](std::size_t core) {
        aborted.push_back(core);
    });

    // Core 0 holds an in-flight transaction over the line.
    m.context(0).txBegin();
    m.context(0).write<std::uint64_t>(base, 1u);
    ASSERT_TRUE(m.context(0).inTransaction());

    // Core 1 writes the same line: requester wins, the suspended
    // transaction aborts, the handler hears about it.
    m.context(1).txBegin();
    m.context(1).write<std::uint64_t>(base, 2u);
    m.context(1).txCommit();

    EXPECT_FALSE(m.context(0).inTransaction());
    ASSERT_EQ(aborted.size(), 1u);
    EXPECT_EQ(aborted[0], 0u);

    const StatsSnapshot s = m.snapshot();
    EXPECT_EQ(s.at("multicore.conflictAborts"), 1u);
    EXPECT_EQ(s.at("core0.txn.aborted"), 1u);
    EXPECT_EQ(s.at("core1.txn.committed"), 1u);

    // The winner's value survives; the aborted store was undone.
    EXPECT_EQ(m.context(0).read<std::uint64_t>(base), 2u);
}

// ---------------------------------------------------------------------
// Section V-C: the context-switch drain
// ---------------------------------------------------------------------

/** In-flight transaction with a few buffered log records. */
void
beginBuffered(PmContext &ctx, Addr base, std::size_t lines,
              std::uint64_t salt)
{
    ctx.txBegin();
    for (std::size_t i = 0; i < lines; ++i)
        ctx.write<std::uint64_t>(base + i * cacheLineSize,
                                 mix64Salted(i, salt));
}

TEST(McContextSwitch, QuantumExpiryDrainMatchesPmSystemOrder)
{
    const SystemConfig cfg = mcConfig(1);

    // Reference: PmSystem's Section V-C contextSwitch().
    PmSystem sys(cfg);
    const Addr base = sys.heap().alloc(8 * cacheLineSize);
    beginBuffered(sys, base, 5, 0x51);
    ASSERT_GT(sys.engine().buffer().size(), 0u);
    sys.engine().contextSwitch();
    const auto want = sys.engine().logArea().scanValid();
    ASSERT_GT(want.size(), 0u);

    // The machine path: noteQuantumExpiry() on the departing core.
    McMachine m(cfg);
    const Addr mc_base = m.heap().alloc(8 * cacheLineSize);
    ASSERT_EQ(mc_base, base);
    beginBuffered(m.context(0), mc_base, 5, 0x51);
    m.noteQuantumExpiry(0, /*drain=*/true);
    const auto got = m.core(0).engine().logArea().scanValid();

    // Same records, same log order: the drain order is pinned.
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].base, want[i].base) << i;
        EXPECT_EQ(got[i].words, want[i].words) << i;
        EXPECT_EQ(got[i].txnSeq, want[i].txnSeq) << i;
    }
    EXPECT_EQ(m.core(0).engine().buffer().size(), 0u);
    EXPECT_EQ(m.snapshot().at("multicore.ctxSwitchDrains"), 1u);

    m.context(0).txCommit();
    sys.txCommit();
}

TEST(McContextSwitch, DrainIsPerCoreOnly)
{
    McMachine m(mcConfig(2));
    const Addr base = m.heap().alloc(16 * cacheLineSize);

    // Both cores hold buffered records on disjoint lines.
    beginBuffered(m.context(0), base, 4, 0x61);
    beginBuffered(m.context(1), base + 8 * cacheLineSize, 4, 0x62);
    ASSERT_GT(m.core(0).engine().buffer().size(), 0u);
    const std::size_t peer = m.core(1).engine().buffer().size();
    ASSERT_GT(peer, 0u);

    // Only the departing core drains; the peer keeps batching.
    m.noteQuantumExpiry(0, /*drain=*/true);
    EXPECT_EQ(m.core(0).engine().buffer().size(), 0u);
    EXPECT_EQ(m.core(1).engine().buffer().size(), peer);

    // drain=false (the knob tests use) is a no-op.
    m.noteQuantumExpiry(1, /*drain=*/false);
    EXPECT_EQ(m.core(1).engine().buffer().size(), peer);
    EXPECT_EQ(m.snapshot().at("multicore.ctxSwitchDrains"), 1u);

    m.context(0).txCommit();
    m.context(1).txCommit();
}

// ---------------------------------------------------------------------
// Statistics namespace
// ---------------------------------------------------------------------

TEST(McStats, SnapshotMergesSharedAndPrefixedPerCoreCounters)
{
    McMachine m(mcConfig(4));
    const Addr base = m.heap().alloc(8 * cacheLineSize);
    for (std::size_t c = 0; c < 4; ++c)
        commitLines(m.context(c), base + c * cacheLineSize, 1, c);

    const StatsSnapshot s = m.snapshot();

    // Shared counters appear bare, per-core ones prefixed, and every
    // core contributes the same instrument set.
    EXPECT_TRUE(s.count("pm.bytesWritten"));
    EXPECT_TRUE(s.count("multicore.probes"));
    std::size_t percore[4] = {0, 0, 0, 0};
    for (const auto &[key, value] : s) {
        for (std::size_t c = 0; c < 4; ++c) {
            const std::string prefix = "core" + std::to_string(c) + ".";
            if (key.compare(0, prefix.size(), prefix) == 0)
                ++percore[c];
        }
    }
    EXPECT_GT(percore[0], 0u);
    EXPECT_EQ(percore[0], percore[1]);
    EXPECT_EQ(percore[0], percore[2]);
    EXPECT_EQ(percore[0], percore[3]);

    // No bare engine-level counter leaks into the merged view: all
    // txn.* live under coreN. prefixes.
    for (const auto &[key, value] : s)
        EXPECT_NE(key.compare(0, 4, "txn."), 0) << key;

    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_EQ(s.at("core" + std::to_string(c) + ".txn.committed"),
                  1u);
}

TEST(McStats, SharedSequenceCounterKeepsTxnTagsGloballyUnique)
{
    McMachine m(mcConfig(2));
    const Addr base = m.heap().alloc(8 * cacheLineSize);

    // Interleave begins so both engines pull from the shared source.
    std::set<std::uint64_t> seqs;
    for (int round = 0; round < 3; ++round) {
        for (std::size_t c = 0; c < 2; ++c) {
            m.context(c).txBegin();
            EXPECT_TRUE(
                seqs.insert(m.context(c).currentTxnSeq()).second);
        }
        for (std::size_t c = 0; c < 2; ++c) {
            m.context(c).write<std::uint64_t>(
                base + (round * 2 + c) * cacheLineSize, round);
            m.context(c).txCommit();
        }
    }
    EXPECT_EQ(seqs.size(), 6u);
}

// ---------------------------------------------------------------------
// Scheduler determinism
// ---------------------------------------------------------------------

McYcsbConfig
smallYcsb(std::size_t cores, bool weighted)
{
    McYcsbConfig cfg;
    cfg.numCores = cores;
    cfg.opsPerCore = 20;
    cfg.valueBytes = 32;
    cfg.seed = 1234;
    cfg.sharedPct = 30;
    cfg.sched.seed = 99;
    cfg.sched.weighted = weighted;
    cfg.sys = mcConfig(cores);
    return cfg;
}

void
expectIdenticalRuns(const McYcsbConfig &cfg)
{
    const McYcsbResult a = runMcYcsb(cfg);
    const McYcsbResult b = runMcYcsb(cfg);

    ASSERT_TRUE(a.verified) << a.failure;
    ASSERT_TRUE(b.verified) << b.failure;
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.quanta, b.quanta);
    ASSERT_EQ(a.commitLog.size(), b.commitLog.size());
    for (std::size_t i = 0; i < a.commitLog.size(); ++i) {
        EXPECT_EQ(a.commitLog[i].core, b.commitLog[i].core) << i;
        EXPECT_EQ(a.commitLog[i].key, b.commitLog[i].key) << i;
    }
    EXPECT_EQ(a.statsAfter, b.statsAfter);
}

TEST(McScheduler, RoundRobinRunsAreBitIdentical)
{
    expectIdenticalRuns(smallYcsb(3, /*weighted=*/false));
}

TEST(McScheduler, WeightedRunsAreBitIdentical)
{
    expectIdenticalRuns(smallYcsb(3, /*weighted=*/true));
}

TEST(McScheduler, DifferentSeedsChangeTheInterleaving)
{
    McYcsbConfig cfg = smallYcsb(3, /*weighted=*/true);
    const McYcsbResult a = runMcYcsb(cfg);
    cfg.sched.seed = 100;
    const McYcsbResult b = runMcYcsb(cfg);

    // Same ops, different scheduler-commit order.
    ASSERT_EQ(a.commitLog.size(), b.commitLog.size());
    bool differs = false;
    for (std::size_t i = 0; i < a.commitLog.size() && !differs; ++i)
        differs = a.commitLog[i].core != b.commitLog[i].core ||
                  a.commitLog[i].key != b.commitLog[i].key;
    EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------
// Op streams
// ---------------------------------------------------------------------

TEST(McStreams, PrivateKeysAreGloballyDisjoint)
{
    McYcsbConfig cfg = smallYcsb(4, false);
    cfg.opsPerCore = 50;
    const auto streams = mcYcsbStreams(cfg);
    ASSERT_EQ(streams.size(), 4u);

    // Collect the shared pool: keys touched by more than one core.
    std::map<std::uint64_t, std::set<std::size_t>> owners;
    for (const auto &stream : streams)
        for (const auto &op : stream)
            owners[op.key].insert(op.core);

    std::size_t shared_ops = 0;
    for (const auto &stream : streams) {
        EXPECT_EQ(stream.size(), cfg.opsPerCore);
        for (const auto &op : stream)
            if (owners.at(op.key).size() > 1)
                ++shared_ops;
    }
    // A 30% shared fraction over 200 ops lands well inside (0, 200).
    EXPECT_GT(shared_ops, 0u);
    EXPECT_LT(shared_ops, 4 * cfg.opsPerCore);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
