/**
 * @file
 * PmSystem facade tests: root directory, typed access, annotation
 * policy routing, DRAM vs PM address handling, quiesce, and the
 * stats plumbing the experiment harness depends on.
 */

#include <gtest/gtest.h>

#include "compiler/compiler_policy.hh"
#include "core/pm_system.hh"
#include "core/tx.hh"

namespace slpmt
{
namespace
{

TEST(System, RootSlotsAreDurableAnchors)
{
    PmSystem sys;
    const Addr obj = sys.heap().alloc(64);
    {
        DurableTx tx(sys);
        sys.writeRoot(3, obj);
        tx.commit();
    }
    sys.crash();
    sys.recoverHardware();
    EXPECT_EQ(sys.peek<Addr>(sys.rootSlotAddr(3)), obj);
}

TEST(System, RootSlotOutOfRangePanics)
{
    PmSystem sys;
    EXPECT_THROW(sys.rootSlotAddr(numRootSlots), PanicError);
}

TEST(System, HeapLivesAboveRootDirectory)
{
    PmSystem sys;
    const Addr a = sys.heap().alloc(8);
    EXPECT_GE(a, sys.rootSlotAddr(numRootSlots - 1) + wordSize);
    EXPECT_TRUE(sys.map().isPm(a));
}

TEST(System, TypedReadWriteRoundTrip)
{
    PmSystem sys;
    const Addr a = sys.heap().alloc(64);
    struct Pod
    {
        std::uint32_t x;
        std::uint16_t y;
        std::uint8_t z[10];
    };
    Pod pod{0x12345678, 0xABCD, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}};
    sys.write(a, pod);
    const Pod back = sys.read<Pod>(a);
    EXPECT_EQ(back.x, pod.x);
    EXPECT_EQ(back.y, pod.y);
    EXPECT_EQ(std::memcmp(back.z, pod.z, sizeof(pod.z)), 0);
}

TEST(System, WriteSiteRoutesThroughPolicy)
{
    PmSystem sys;
    const SiteId site = sys.sites().add(
        {.name = "t", .manual = {.lazy = false, .logFree = true},
         .targetsFreshAlloc = true});
    const Addr a = sys.heap().alloc(64);

    // Manual policy (default): the store is log-free.
    sys.txBegin();
    sys.writeSite<std::uint64_t>(a, 1, site);
    EXPECT_EQ(sys.stats().get("txn.logRecordsCreated"), 0u);
    sys.txCommit();

    // Null policy: the same site logs.
    static const NullAnnotationPolicy null_policy;
    sys.setAnnotationPolicy(&null_policy);
    sys.txBegin();
    sys.writeSite<std::uint64_t>(a, 2, site);
    EXPECT_EQ(sys.stats().get("txn.logRecordsCreated"), 1u);
    sys.txCommit();

    // Compiler policy: infers log-free from the fresh-alloc fact.
    static const CompilerAnnotationPolicy compiler_policy;
    sys.setAnnotationPolicy(&compiler_policy);
    sys.txBegin();
    sys.writeSite<std::uint64_t>(a + 8, 3, site);
    EXPECT_EQ(sys.stats().get("txn.logRecordsCreated"), 1u);
    sys.txCommit();
}

TEST(System, DramStoresAreNotTransactional)
{
    PmSystem sys;
    const Addr dram_addr = 0x2000;  // DRAM range
    sys.txBegin();
    sys.write<std::uint64_t>(dram_addr, 7);
    EXPECT_EQ(sys.stats().get("txn.logRecordsCreated"), 0u);
    sys.txCommit();
    EXPECT_EQ(sys.read<std::uint64_t>(dram_addr), 7u);
    sys.crash();
    // DRAM loses its contents.
    EXPECT_EQ(sys.read<std::uint64_t>(dram_addr), 0u);
}

TEST(System, UnmappedAccessPanics)
{
    PmSystem sys;
    std::uint64_t v = 0;
    EXPECT_THROW(sys.readBytes(0xFFFF'FFFF'0000ULL, &v, 8), PanicError);
}

TEST(System, QuiesceMakesEverythingDurable)
{
    PmSystem sys;
    const Addr a = sys.heap().alloc(64);
    sys.txBegin();
    sys.writeT<std::uint64_t>(a, 0x77, {.lazy = true, .logFree = true});
    sys.txCommit();
    EXPECT_EQ(sys.peek<std::uint64_t>(a), 0u);
    sys.quiesce();
    EXPECT_EQ(sys.peek<std::uint64_t>(a), 0x77u);
}

TEST(System, ComputeAdvancesClock)
{
    PmSystem sys;
    const Cycles before = sys.cycles();
    sys.compute(123);
    EXPECT_EQ(sys.cycles(), before + 123);
}

TEST(System, CyclesMonotonicAcrossOperations)
{
    PmSystem sys;
    const Addr a = sys.heap().alloc(64);
    Cycles last = sys.cycles();
    for (int i = 0; i < 10; ++i) {
        DurableTx tx(sys);
        sys.write<std::uint64_t>(a, i);
        tx.commit();
        EXPECT_GT(sys.cycles(), last);
        last = sys.cycles();
    }
}

TEST(System, StatsDeltaIsolatesPhases)
{
    PmSystem sys;
    const Addr a = sys.heap().alloc(64);
    DurableTx setup(sys);
    sys.write<std::uint64_t>(a, 1);
    setup.commit();

    const auto before = sys.stats().snapshot();
    DurableTx tx(sys);
    sys.write<std::uint64_t>(a, 2);
    tx.commit();
    const auto delta =
        StatsRegistry::delta(before, sys.stats().snapshot());
    EXPECT_EQ(delta.at("txn.committed"), 1u);
}

TEST(System, ConfigurableSchemePropagates)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(SchemeKind::ATOM);
    PmSystem sys(cfg);
    EXPECT_EQ(sys.engine().scheme().kind, SchemeKind::ATOM);
    EXPECT_FALSE(sys.engine().scheme().fineGrainLogging);
}

TEST(System, WriteLatencyKnobChangesTiming)
{
    auto run = [](std::uint64_t lat) {
        SystemConfig cfg;
        cfg.pm.writeLatencyNs = lat;
        PmSystem sys(cfg);
        const Addr a = sys.heap().alloc(4096);
        for (int t = 0; t < 20; ++t) {
            DurableTx tx(sys);
            for (int i = 0; i < 8; ++i)
                sys.write<std::uint64_t>(
                    a + static_cast<Addr>(i) * 512, t);
            tx.commit();
        }
        return sys.cycles();
    };
    EXPECT_LT(run(500), run(2300));
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
