/**
 * @file
 * End-to-end smoke: every workload inserts and verifies a small
 * ycsb-load batch under every scheme.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "test_util.hh"

namespace slpmt
{
namespace
{

struct SmokeParam
{
    std::string workload;
    SchemeKind scheme;
};

class SmokeTest
    : public ::testing::TestWithParam<std::tuple<std::string, SchemeKind>>
{
};

TEST_P(SmokeTest, InsertAndVerify)
{
    const auto &[workload, scheme] = GetParam();
    ExperimentConfig cfg;
    cfg.scheme = scheme;
    cfg.ycsb.numOps = 120;
    cfg.ycsb.valueBytes = 64;
    const ExperimentResult res = runExperiment(workload, cfg);
    EXPECT_TRUE(res.verified) << res.failure;
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.pmWriteBytes, 0u);
    EXPECT_EQ(res.commits, 120u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllSchemes, SmokeTest,
    ::testing::Combine(
        ::testing::Values("hashtable", "rbtree", "heap", "avl",
                          "kv-btree", "kv-ctree", "kv-rtree"),
        ::testing::Values(SchemeKind::FG, SchemeKind::FG_LG,
                          SchemeKind::FG_LZ, SchemeKind::SLPMT,
                          SchemeKind::SLPMT_CL, SchemeKind::ATOM,
                          SchemeKind::EDE)),
    [](const auto &info) {
        return testName(std::get<0>(info.param)) + "_" +
               testName(std::get<1>(info.param));
    });

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
