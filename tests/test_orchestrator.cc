/**
 * @file
 * The experiment orchestrator: matrix expansion and cell keys, the
 * schedule-independence guarantee (byte-identical JSON regardless of
 * worker count), cross-component stats invariants on every scheme,
 * agreement with a direct runExperiment() call, the JSON parser, and
 * baseline regression diffing.
 */

#include <gtest/gtest.h>

#include "sim/orchestrator.hh"

namespace slpmt
{
namespace
{

/** Small but non-trivial sweep used by several tests. */
MatrixSpec
smallSpec()
{
    MatrixSpec spec;
    spec.workloads = {"hashtable", "avl"};
    spec.schemes = {SchemeKind::FG, SchemeKind::SLPMT};
    spec.numOps = 120;
    MatrixSpec out = spec;
    out.valueSizes = {64};
    return out;
}

TEST(Orchestrator, CaseKeyShape)
{
    EXPECT_EQ(caseKey("hashtable", SchemeKind::FG), "hashtable/FG");
    EXPECT_EQ(caseKey("avl", SchemeKind::SLPMT_CL, "64B"),
              "avl/SLPMT-CL/64B");
}

TEST(Orchestrator, ExpandMatrixEnumerationAndSuffixes)
{
    // Single-point extra axes: short keys, workload-major enumeration
    // with the scheme innermost.
    const auto flat = expandMatrix(smallSpec());
    ASSERT_EQ(flat.size(), 4u);
    EXPECT_EQ(flat[0].key, "hashtable/FG");
    EXPECT_EQ(flat[1].key, "hashtable/SLPMT");
    EXPECT_EQ(flat[2].key, "avl/FG");
    EXPECT_EQ(flat[3].key, "avl/SLPMT");
    EXPECT_EQ(flat[0].cfg.ycsb.valueBytes, 64u);
    EXPECT_EQ(flat[0].cfg.ycsb.numOps, 120u);

    // A swept axis shows up in the key; the others stay hidden.
    MatrixSpec swept = smallSpec();
    swept.workloads = {"hashtable"};
    swept.schemes = {SchemeKind::FG};
    swept.valueSizes = {16, 256};
    swept.pmWriteLatenciesNs = {500, 1100};
    const auto cases = expandMatrix(swept);
    ASSERT_EQ(cases.size(), 4u);
    EXPECT_EQ(cases[0].key, "hashtable/FG/16B/500ns");
    EXPECT_EQ(cases[1].key, "hashtable/FG/16B/1100ns");
    EXPECT_EQ(cases[2].key, "hashtable/FG/256B/500ns");
    EXPECT_EQ(cases[3].key, "hashtable/FG/256B/1100ns");

    MatrixSpec empty = smallSpec();
    empty.schemes.clear();
    EXPECT_THROW(expandMatrix(empty), PanicError);
}

TEST(Orchestrator, MissingCellIsFatal)
{
    MatrixResult result;
    EXPECT_EQ(result.find("nope/FG"), nullptr);
    EXPECT_THROW(result.get("nope/FG"), FatalError);
}

TEST(Orchestrator, ReportIsIdenticalAcrossWorkerCounts)
{
    const auto cases = expandMatrix(smallSpec());
    const MatrixResult serial = runCases(cases, 1);
    const MatrixResult parallel = runCases(cases, 4);

    std::string failures;
    EXPECT_TRUE(serial.allVerified(&failures)) << failures;

    // Byte-for-byte: schedule must not leak into the report, with or
    // without the full stats blocks.
    EXPECT_EQ(reportJson("small", serial, false),
              reportJson("small", parallel, false));
    EXPECT_EQ(reportJson("small", serial, true),
              reportJson("small", parallel, true));
}

TEST(Orchestrator, MatchesDirectRunExperiment)
{
    const MatrixResult swept = runMatrix(smallSpec(), 2);

    ExperimentConfig cfg;
    cfg.scheme = SchemeKind::SLPMT;
    cfg.ycsb.numOps = 120;
    cfg.ycsb.valueBytes = 64;
    const ExperimentResult direct = runExperiment("avl", cfg);

    const ExperimentResult &cell = swept.get("avl/SLPMT");
    EXPECT_EQ(cell.cycles, direct.cycles);
    EXPECT_EQ(cell.pmWriteBytes, direct.pmWriteBytes);
    EXPECT_EQ(cell.logRecords, direct.logRecords);
    EXPECT_EQ(cell.stats, direct.stats);
}

/** Cross-component invariants every scheme must satisfy. */
void
checkStatsInvariants(const std::string &key, const ExperimentResult &res,
                     SchemeKind scheme)
{
    const StatsSnapshot &s = res.stats;
    auto v = [&s](const char *name) {
        auto it = s.find(name);
        return it == s.end() ? std::uint64_t(0) : it->second;
    };

    EXPECT_TRUE(res.verified) << key << ": " << res.failure;

    // Every begun transaction ends exactly once.
    EXPECT_EQ(v("txn.begun"), v("txn.committed") + v("txn.aborted"))
        << key;

    // PM traffic splits exactly into data and log bytes.
    EXPECT_EQ(v("pm.bytesWritten"),
              v("pm.dataBytesWritten") + v("pm.logBytesWritten"))
        << key;

    // All log traffic flows through the undo-log area's accounting.
    EXPECT_EQ(v("pm.logBytesWritten"),
              v("undolog.wireBytes") + v("undolog.truncateBytes"))
        << key;

    // With the tiered buffer in front, every wire byte the area
    // accepts was drained from a buffer tier.
    if (SchemeConfig::forKind(scheme).useLogBuffer) {
        EXPECT_EQ(v("logbuf.drainedWireBytes"), v("undolog.wireBytes"))
            << key;
    } else {
        EXPECT_EQ(v("logbuf.inserts"), 0u) << key;
    }

    // The lazy-drain taxonomy decomposes the forced-persist total.
    EXPECT_EQ(v("txn.lazyForcedPersists"),
              v("txn.lazyDrain.sigHit") + v("txn.lazyDrain.lineOwner") +
                  v("txn.lazyDrain.idWrap") +
                  v("txn.lazyDrain.eviction") +
                  v("txn.lazyDrain.explicit") +
                  v("txn.lazyDrain.remoteSigHit") +
                  v("txn.lazyDrain.remoteIdObserved"))
        << key;

    // Histogram totals agree with their event counters.
    EXPECT_EQ(v("txn.commitCycles.count"), v("txn.committed")) << key;
    EXPECT_EQ(v("txn.storeBytes.count"),
              v("txn.stores") + v("txn.storeTs"))
        << key;
}

TEST(Orchestrator, StatsInvariantsHoldOnEveryScheme)
{
    MatrixSpec spec;
    spec.workloads = {"hashtable", "kv-btree"};
    spec.schemes = {SchemeKind::FG,    SchemeKind::FG_LG,
                    SchemeKind::FG_LZ, SchemeKind::SLPMT,
                    SchemeKind::SLPMT_CL, SchemeKind::ATOM,
                    SchemeKind::EDE};
    spec.valueSizes = {64};
    spec.numOps = 120;
    const MatrixResult result = runMatrix(spec, 0);

    for (std::size_t i = 0; i < result.cases.size(); ++i)
        checkStatsInvariants(result.cases[i].key, result.results[i],
                             result.cases[i].cfg.scheme);
}

TEST(Json, ParsesScalarsAndStructure)
{
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(
        "{\"a\": [1, -2.5, true, false, null], \"b\": {\"c\": \"x\\n\"}}",
        &doc, &error))
        << error;
    ASSERT_TRUE(doc.isObject());
    const JsonValue *a = doc.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->array.size(), 5u);
    EXPECT_EQ(a->array[0].number, 1.0);
    EXPECT_EQ(a->array[1].number, -2.5);
    EXPECT_TRUE(a->array[2].boolean);
    EXPECT_FALSE(a->array[3].boolean);
    EXPECT_EQ(a->array[4].type, JsonValue::Type::Null);
    const JsonValue *b = doc.find("b");
    ASSERT_NE(b, nullptr);
    const JsonValue *c = b->find("c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->string, "x\n");
}

TEST(Json, RejectsMalformedInput)
{
    JsonValue doc;
    std::string error;
    EXPECT_FALSE(parseJson("", &doc, &error));
    EXPECT_FALSE(parseJson("{\"a\": }", &doc, &error));
    EXPECT_FALSE(parseJson("[1, 2,]", &doc, &error));
    EXPECT_FALSE(parseJson("{} trailing", &doc, &error));
    EXPECT_FALSE(parseJson("\"unterminated", &doc, &error));
    EXPECT_FALSE(error.empty());
}

TEST(Json, RoundTripsAnOrchestratorReport)
{
    MatrixSpec spec = smallSpec();
    spec.workloads = {"hashtable"};
    const MatrixResult result = runMatrix(spec, 2);
    const std::string json = reportJson("rt", result, true);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(json, &doc, &error)) << error;
    EXPECT_EQ(doc.find("schema")->string, "slpmt-bench-1");
    EXPECT_EQ(doc.find("report")->string, "rt");
    const JsonValue *cells = doc.find("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_TRUE(cells->isObject());
    EXPECT_EQ(cells->object.size(), result.cases.size());

    const JsonValue *cell = cells->find("hashtable/SLPMT");
    ASSERT_NE(cell, nullptr);
    const ExperimentResult &res = result.get("hashtable/SLPMT");
    EXPECT_EQ(cell->find("cycles")->number,
              static_cast<double>(res.cycles));
    EXPECT_EQ(cell->find("verified")->boolean, true);
    const JsonValue *stats = cell->find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->object.size(), res.stats.size());
}

TEST(Orchestrator, BaselineDiffFlagsOnlyRealRegressions)
{
    const MatrixResult result = runMatrix(smallSpec(), 2);

    // Against its own report: clean.
    JsonValue self;
    std::string error;
    ASSERT_TRUE(
        parseJson(reportJson("small", result, false), &self, &error))
        << error;
    const BaselineDiff clean =
        diffAgainstBaseline(self, "small", result, 0.05);
    EXPECT_TRUE(clean.ok());
    EXPECT_EQ(clean.cellsCompared, result.cases.size());
    EXPECT_EQ(clean.cellsMissingInBaseline, 0u);

    // Shrink one baseline cycle count: the current run now exceeds
    // the 5% threshold on that one metric only.
    JsonValue tampered = self;
    JsonValue &cell =
        tampered.object.at("cells").object.at("hashtable/SLPMT");
    cell.object.at("cycles").number *= 0.5;
    const BaselineDiff diff =
        diffAgainstBaseline(tampered, "small", result, 0.05);
    ASSERT_EQ(diff.regressions.size(), 1u);
    EXPECT_EQ(diff.regressions[0].cell, "hashtable/SLPMT");
    EXPECT_EQ(diff.regressions[0].metric, "cycles");
    EXPECT_NEAR(diff.regressions[0].change(), 1.0, 0.01);

    // A generous threshold absorbs the same difference.
    EXPECT_TRUE(
        diffAgainstBaseline(tampered, "small", result, 1.5).ok());

    // Multi-report documents are searched by report name; a missing
    // name compares nothing instead of failing.
    JsonValue multi;
    ASSERT_TRUE(parseJson(
        "{\"schema\":\"slpmt-bench-1\",\"reports\":[" +
            reportJson("other", result, false) + "," +
            reportJson("small", result, false) + "]}",
        &multi, &error))
        << error;
    EXPECT_EQ(diffAgainstBaseline(multi, "small", result, 0.05)
                  .cellsCompared,
              result.cases.size());
    const BaselineDiff unmatched =
        diffAgainstBaseline(self, "absent", result, 0.05);
    EXPECT_EQ(unmatched.cellsCompared, 0u);
    EXPECT_EQ(unmatched.cellsMissingInBaseline, result.cases.size());
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
