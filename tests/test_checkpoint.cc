/**
 * @file
 * Machine checkpoint/restore correctness.
 *
 * The contract under test is bit-exactness: restoring a checkpoint
 * into a freshly constructed machine and continuing the run must be
 * indistinguishable — byte-identical PM and DRAM images, identical
 * stats registries — from the run that never checkpointed. The fuzz
 * crosses all seven schemes with both logging styles on the
 * single-core machine, and 1/2/4-core interleaved runs on the
 * multicore machine (checkpointed at a scheduler quantum boundary and
 * resumed through runInterleavedFrom). The portable encoding must
 * round-trip through bytes and through a file, and reject corruption,
 * truncation, version skew, and configuration mismatches.
 *
 * The CheckpointAudit suite is the cross-mode oracle the
 * checkpoint-audit ctest preset runs: a checkpointed sweep's JSON
 * report must be byte-identical to the --no-checkpoint audit sweep's,
 * single- and multi-core, at any worker count.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#include "checkpoint/checkpoint.hh"
#include "core/pm_system.hh"
#include "multicore/machine.hh"
#include "multicore/mc_crash.hh"
#include "multicore/mc_ycsb.hh"
#include "multicore/scheduler.hh"
#include "validate/crash_explorer.hh"
#include "workloads/factory.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{
namespace
{

SystemConfig
tinySystem(SchemeKind scheme, LoggingStyle style)
{
    SystemConfig sc;
    sc.scheme = SchemeConfig::forKind(scheme);
    sc.style = style;
    sc.hierarchy.l1 = CacheConfig{"L1", 1024, 2, 4};
    sc.hierarchy.l2 = CacheConfig{"L2", 2048, 2, 12};
    sc.hierarchy.l3 = CacheConfig{"L3", 4096, 4, 40};
    return sc;
}

void
applyOp(PmContext &ctx, Workload &wl, const YcsbMixedOp &op)
{
    switch (op.kind) {
      case YcsbOpKind::Insert:
        wl.insert(ctx, op.key, op.value);
        break;
      case YcsbOpKind::Update:
        wl.update(ctx, op.key, op.value);
        break;
      case YcsbOpKind::Remove:
        wl.remove(ctx, op.key);
        break;
    }
}

using Image = std::vector<std::pair<Addr, PagedMemory::Page>>;

Image
imageOf(const PagedMemory &mem)
{
    Image img;
    mem.forEachPageSorted([&](Addr num, const PagedMemory::Page &p) {
        img.emplace_back(num, p);
    });
    return img;
}

/** All scheme kinds, paired with the workload exercising them (one
 *  run per scheme also covers every workload's clone()). */
const std::pair<SchemeKind, const char *> schemeWorkloads[] = {
    {SchemeKind::FG, "hashtable"},  {SchemeKind::FG_LG, "avl"},
    {SchemeKind::FG_LZ, "rbtree"},  {SchemeKind::SLPMT, "kv-btree"},
    {SchemeKind::SLPMT_CL, "kv-ctree"}, {SchemeKind::ATOM, "kv-rtree"},
    {SchemeKind::EDE, "heap"},
};

/**
 * One single-core fuzz round: run a mixed trace, checkpointing at
 * one third and two thirds; continue to the end for the reference
 * state; then restore each checkpoint into a fresh machine, replay
 * its tail, and demand identical final images and stats.
 */
void
fuzzSingleCore(SchemeKind scheme, const std::string &workload,
               LoggingStyle style, std::uint64_t seed)
{
    YcsbMixConfig mix;
    mix.numOps = 18;
    mix.valueBytes = 48;
    mix.seed = seed;
    mix.insertPct = 70;
    mix.updatePct = 20;
    mix.removePct = 10;
    const auto trace = ycsbMixedLoad(mix);

    const SystemConfig sc = tinySystem(scheme, style);
    PmSystem master(sc);
    auto wl = makeWorkload(workload);
    wl->setup(master);

    struct Mark
    {
        MachineCheckpoint ckpt;
        std::unique_ptr<Workload> wl;
        std::size_t nextOp;
    };
    std::vector<Mark> marks;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (i == trace.size() / 3 || i == 2 * trace.size() / 3)
            marks.push_back(Mark{MachineCheckpoint::capture(master),
                                 wl->clone(), i});
        applyOp(master, *wl, trace[i]);
    }

    const Image ref_pm = imageOf(master.pm().memory());
    const Image ref_dram = imageOf(master.dram().memory());
    const StatsSnapshot ref_stats = master.stats().snapshot();
    ASSERT_FALSE(ref_pm.empty());

    for (const Mark &mark : marks) {
        PmSystem forked(sc);
        mark.ckpt.restore(forked);
        auto fwl = mark.wl->clone();
        for (std::size_t i = mark.nextOp; i < trace.size(); ++i)
            applyOp(forked, *fwl, trace[i]);

        EXPECT_TRUE(imageOf(forked.pm().memory()) == ref_pm)
            << "PM image diverged after restore at op " << mark.nextOp;
        EXPECT_TRUE(imageOf(forked.dram().memory()) == ref_dram)
            << "DRAM image diverged after restore at op "
            << mark.nextOp;
        EXPECT_EQ(forked.stats().snapshot(), ref_stats);
    }
}

/**
 * One multicore fuzz round: interleave per-core YCSB streams,
 * checkpointing (machine + cursors + commit log + scheduler
 * registers) at a quantum boundary; run the master out for the
 * reference; then restore, resume with runInterleavedFrom, and
 * demand identical final images and merged stats.
 */
void
fuzzMultiCore(SchemeKind scheme, LoggingStyle style,
              std::size_t cores, std::uint64_t seed)
{
    McYcsbConfig rc;
    rc.workload = "hashtable";
    rc.numCores = cores;
    rc.opsPerCore = 10;
    rc.valueBytes = 32;
    rc.seed = seed;
    rc.sharedPct = 25;
    rc.sys = tinySystem(scheme, style);

    SystemConfig sys_cfg = rc.sys;
    sys_cfg.numCores = cores;
    const auto streams = mcYcsbStreams(rc);

    McMachine master(sys_cfg);
    auto wl = makeWorkload(rc.workload);
    wl->setup(master.context(0));

    std::vector<McOpRecord> commit_log;
    std::vector<std::unique_ptr<McYcsbDriver>> drivers;
    std::vector<McCoreDriver *> ptrs;
    for (std::size_t i = 0; i < cores; ++i) {
        drivers.push_back(std::make_unique<McYcsbDriver>(
            master.context(i), *wl, streams[i], commit_log));
        ptrs.push_back(drivers.back().get());
    }

    struct Mark
    {
        MachineCheckpoint ckpt;
        std::unique_ptr<Workload> wl;
        std::vector<std::size_t> cursors;
        std::size_t logSize = 0;
        McScheduleState sched;
    };
    std::vector<Mark> marks;

    runInterleaved(master, ptrs, rc.sched,
                   [&](const McScheduleState &st) {
                       if (st.quanta != 2)
                           return;
                       Mark m{MachineCheckpoint::capture(master),
                              wl->clone(),
                              {},
                              commit_log.size(),
                              st};
                       for (const auto &d : drivers)
                           m.cursors.push_back(d->position());
                       marks.push_back(std::move(m));
                   });
    ASSERT_EQ(marks.size(), 1u) << "run too short to hit quantum 2";

    const Image ref_pm = imageOf(master.pm().memory());
    const StatsSnapshot ref_stats = master.snapshot();
    const std::size_t ref_log = commit_log.size();

    const Mark &mark = marks.front();
    McMachine forked(sys_cfg);
    auto fwl = mark.wl->clone();
    mark.ckpt.restore(forked);

    std::vector<McOpRecord> flog(commit_log.begin(),
                                 commit_log.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         mark.logSize));
    std::vector<std::unique_ptr<McYcsbDriver>> fdrivers;
    std::vector<McCoreDriver *> fptrs;
    for (std::size_t i = 0; i < cores; ++i) {
        fdrivers.push_back(std::make_unique<McYcsbDriver>(
            forked.context(i), *fwl, streams[i], flog));
        fdrivers.back()->resumeAt(mark.cursors[i]);
        fptrs.push_back(fdrivers.back().get());
    }
    runInterleavedFrom(forked, fptrs, rc.sched, mark.sched);

    EXPECT_EQ(flog.size(), ref_log);
    EXPECT_TRUE(imageOf(forked.pm().memory()) == ref_pm)
        << "PM image diverged after multicore resume";
    EXPECT_EQ(forked.snapshot(), ref_stats);
}

TEST(CheckpointFuzz, AllSchemesUndoRestoreBitExact)
{
    for (const auto &[scheme, workload] : schemeWorkloads)
        fuzzSingleCore(scheme, workload, LoggingStyle::Undo,
                       1000 + static_cast<std::uint64_t>(scheme));
}

TEST(CheckpointFuzz, AllSchemesRedoRestoreBitExact)
{
    for (const auto &[scheme, workload] : schemeWorkloads)
        fuzzSingleCore(scheme, workload, LoggingStyle::Redo,
                       2000 + static_cast<std::uint64_t>(scheme));
}

TEST(CheckpointFuzz, MultiCoreResumeBitExact)
{
    for (const std::size_t cores : {1u, 2u, 4u}) {
        fuzzMultiCore(SchemeKind::SLPMT, LoggingStyle::Undo, cores,
                      3000 + cores);
        fuzzMultiCore(SchemeKind::FG, LoggingStyle::Redo, cores,
                      4000 + cores);
    }
}

/** A small machine with known content, for the encoding tests. */
MachineCheckpoint
sampleCheckpoint(PmSystem &sys)
{
    auto wl = makeWorkload("hashtable");
    wl->setup(sys);
    for (std::uint64_t k = 1; k <= 9; ++k)
        wl->insert(sys, 2 * k + 1, std::vector<std::uint8_t>(40, 7));
    return MachineCheckpoint::capture(sys);
}

TEST(CheckpointEncoding, ByteRoundTripRestoresIdentically)
{
    const SystemConfig sc =
        tinySystem(SchemeKind::SLPMT, LoggingStyle::Undo);
    PmSystem sys(sc);
    const MachineCheckpoint ckpt = sampleCheckpoint(sys);

    const auto bytes = ckpt.toBytes();
    const MachineCheckpoint back = MachineCheckpoint::fromBytes(bytes);
    EXPECT_EQ(back.configFingerprint(), ckpt.configFingerprint());
    EXPECT_EQ(back.pagesHeld(), ckpt.pagesHeld());

    PmSystem a(sc), b(sc);
    ckpt.restore(a);
    back.restore(b);
    EXPECT_TRUE(imageOf(a.pm().memory()) == imageOf(b.pm().memory()));
    EXPECT_TRUE(imageOf(a.dram().memory()) ==
                imageOf(b.dram().memory()));
    EXPECT_EQ(a.stats().snapshot(), b.stats().snapshot());
}

TEST(CheckpointEncoding, FileRoundTrip)
{
    const SystemConfig sc =
        tinySystem(SchemeKind::SLPMT_CL, LoggingStyle::Redo);
    PmSystem sys(sc);
    const MachineCheckpoint ckpt = sampleCheckpoint(sys);
    const auto bytes = ckpt.toBytes();

    const char *path = "checkpoint_roundtrip.ckpt.tmp";
    {
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
    }
    std::vector<std::uint8_t> read_back;
    {
        std::ifstream in(path, std::ios::binary);
        read_back.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
    }
    std::remove(path);
    ASSERT_EQ(read_back, bytes);

    PmSystem restored(sc);
    MachineCheckpoint::fromBytes(read_back).restore(restored);
    EXPECT_EQ(restored.stats().snapshot(), sys.stats().snapshot());
}

TEST(CheckpointEncoding, CorruptedBlobRejected)
{
    PmSystem sys(tinySystem(SchemeKind::SLPMT, LoggingStyle::Undo));
    auto bytes = sampleCheckpoint(sys).toBytes();
    bytes[bytes.size() / 2] ^= 0x5a;
    EXPECT_THROW(MachineCheckpoint::fromBytes(bytes), CheckpointError);
}

TEST(CheckpointEncoding, TruncatedBlobRejected)
{
    PmSystem sys(tinySystem(SchemeKind::SLPMT, LoggingStyle::Undo));
    auto bytes = sampleCheckpoint(sys).toBytes();
    for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                   bytes.size() / 2,
                                   bytes.size() - 5}) {
        std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              keep));
        EXPECT_THROW(MachineCheckpoint::fromBytes(cut),
                     CheckpointError);
    }
}

TEST(CheckpointEncoding, VersionMismatchRejected)
{
    PmSystem sys(tinySystem(SchemeKind::SLPMT, LoggingStyle::Undo));
    auto bytes = sampleCheckpoint(sys).toBytes();
    // Bump the format version field (bytes 4..7 after the magic) and
    // re-seal the CRC so only the version check can object.
    bytes[4] += 1;
    const std::size_t body = bytes.size() - 4;
    const std::uint32_t crc = crc32c(bytes.data(), body);
    for (std::size_t i = 0; i < 4; ++i)
        bytes[body + i] =
            static_cast<std::uint8_t>((crc >> (8 * i)) & 0xff);
    EXPECT_THROW(MachineCheckpoint::fromBytes(bytes), CheckpointError);
}

TEST(CheckpointEncoding, ConfigFingerprintMismatchRejected)
{
    PmSystem sys(tinySystem(SchemeKind::SLPMT, LoggingStyle::Undo));
    const MachineCheckpoint ckpt = sampleCheckpoint(sys);

    PmSystem other_scheme(
        tinySystem(SchemeKind::FG, LoggingStyle::Undo));
    EXPECT_THROW(ckpt.restore(other_scheme), CheckpointError);

    PmSystem other_style(
        tinySystem(SchemeKind::SLPMT, LoggingStyle::Redo));
    EXPECT_THROW(ckpt.restore(other_style), CheckpointError);
}

TEST(CheckpointEncoding, MachineKindMismatchRejected)
{
    // A 1-core McMachine has the same configuration fingerprint as a
    // PmSystem, so only the machine-kind tag can tell them apart.
    PmSystem sys(tinySystem(SchemeKind::SLPMT, LoggingStyle::Undo));
    const MachineCheckpoint ckpt = sampleCheckpoint(sys);

    SystemConfig mc_cfg =
        tinySystem(SchemeKind::SLPMT, LoggingStyle::Undo);
    mc_cfg.numCores = 1;
    McMachine machine(mc_cfg);
    EXPECT_THROW(ckpt.restore(machine), CheckpointError);
}

/** Shared sampled sweep configuration for the audit tests. */
CrashSweepConfig
auditSweepConfig()
{
    CrashSweepConfig cfg;
    cfg.scheme = SchemeKind::SLPMT;
    cfg.style = LoggingStyle::Undo;
    cfg.workload = "hashtable";
    cfg.tinyCache = true;
    cfg.mix.numOps = 10;
    cfg.mix.valueBytes = 48;
    cfg.mix.insertPct = 70;
    cfg.mix.updatePct = 20;
    cfg.mix.removePct = 10;
    cfg.maxPoints = 10;
    cfg.checkpointInterval = 24;
    return cfg;
}

TEST(CheckpointAudit, SingleCoreReportMatchesNoCheckpointMode)
{
    CrashSweepConfig cfg = auditSweepConfig();
    cfg.useCheckpoints = true;
    cfg.workers = 3;
    const std::string checkpointed = runCrashSweep(cfg).toJson();

    cfg.useCheckpoints = false;
    cfg.workers = 1;
    const std::string audit = runCrashSweep(cfg).toJson();
    EXPECT_EQ(checkpointed, audit);
}

TEST(CheckpointAudit, SingleCoreRedoReportMatchesNoCheckpointMode)
{
    CrashSweepConfig cfg = auditSweepConfig();
    cfg.style = LoggingStyle::Redo;
    cfg.scheme = SchemeKind::FG_LZ;
    cfg.workload = "kv-ctree";
    cfg.useCheckpoints = true;
    cfg.workers = 2;
    const std::string checkpointed = runCrashSweep(cfg).toJson();

    cfg.useCheckpoints = false;
    cfg.workers = 4;
    const std::string audit = runCrashSweep(cfg).toJson();
    EXPECT_EQ(checkpointed, audit);
}

TEST(CheckpointAudit, MultiCoreReportMatchesNoCheckpointMode)
{
    McCrashSweepConfig cfg;
    cfg.scheme = SchemeKind::SLPMT;
    cfg.style = LoggingStyle::Undo;
    cfg.tinyCache = true;
    cfg.run.workload = "hashtable";
    cfg.run.numCores = 2;
    cfg.run.opsPerCore = 6;
    cfg.run.valueBytes = 32;
    cfg.maxPoints = 8;
    cfg.checkpointInterval = 24;
    cfg.useCheckpoints = true;
    cfg.workers = 3;
    const std::string checkpointed = runMcCrashSweep(cfg).toJson();

    cfg.useCheckpoints = false;
    cfg.workers = 1;
    const std::string audit = runMcCrashSweep(cfg).toJson();
    EXPECT_EQ(checkpointed, audit);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
