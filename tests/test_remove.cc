/**
 * @file
 * Remove-operation tests for the workloads with unlink paths
 * (hashtable, kv-ctree, heap), including the Pattern-1b dead-region
 * storeT (poisoning freed nodes without logging) and crash
 * consistency around removals.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/pm_system.hh"
#include "test_util.hh"
#include "workloads/factory.hh"
#include "workloads/maxheap.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{
namespace
{

const std::vector<std::string> removable = {"hashtable", "kv-ctree",
                                            "heap"};

class RemoveTest : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        workload = makeWorkload(GetParam());
        workload->setup(sys);
        ops = ycsbLoad({.numOps = 60, .valueBytes = 32, .seed = 31});
        for (const auto &op : ops)
            workload->insert(sys, op.key, op.value);
    }

    PmSystem sys;
    std::unique_ptr<Workload> workload;
    std::vector<YcsbOp> ops;
};

TEST_P(RemoveTest, RemovesAndKeepsOthers)
{
    std::set<std::size_t> gone;
    for (std::size_t i = 0; i < ops.size(); i += 4) {
        ASSERT_TRUE(workload->remove(sys, ops[i].key));
        gone.insert(i);
    }
    EXPECT_EQ(workload->count(sys), ops.size() - gone.size());
    std::vector<std::uint8_t> got;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (gone.count(i)) {
            EXPECT_FALSE(workload->lookup(sys, ops[i].key, nullptr));
        } else {
            ASSERT_TRUE(workload->lookup(sys, ops[i].key, &got));
            EXPECT_EQ(got, ops[i].value);
        }
    }
    std::string why;
    EXPECT_TRUE(workload->checkConsistency(sys, &why)) << why;
}

TEST_P(RemoveTest, AbsentKeyRefused)
{
    EXPECT_FALSE(workload->remove(sys, 0x2 /* even: never inserted */));
}

TEST_P(RemoveTest, StorageReclaimed)
{
    const std::size_t live_before = sys.heap().liveCount();
    ASSERT_TRUE(workload->remove(sys, ops[0].key));
    EXPECT_LT(sys.heap().liveCount(), live_before);
}

TEST_P(RemoveTest, RemoveEverything)
{
    for (const auto &op : ops)
        ASSERT_TRUE(workload->remove(sys, op.key));
    EXPECT_EQ(workload->count(sys), 0u);
    std::string why;
    EXPECT_TRUE(workload->checkConsistency(sys, &why)) << why;
    // The structure is still usable.
    workload->insert(sys, ops[0].key, ops[0].value);
    EXPECT_EQ(workload->count(sys), 1u);
}

TEST_P(RemoveTest, CommittedRemovalSurvivesCrash)
{
    ASSERT_TRUE(workload->remove(sys, ops[3].key));
    sys.crash();
    sys.recoverHardware();
    workload->recover(sys);
    EXPECT_FALSE(workload->lookup(sys, ops[3].key, nullptr));
    EXPECT_EQ(workload->count(sys), ops.size() - 1);
    std::string why;
    EXPECT_TRUE(workload->checkConsistency(sys, &why)) << why;
}

TEST_P(RemoveTest, InterruptedRemovalRollsBack)
{
    sys.quiesce();
    sys.armCrashAfterStores(1);
    bool crashed = false;
    try {
        workload->remove(sys, ops[9].key);
    } catch (const CrashInjected &) {
        crashed = true;
    }
    sys.armCrashAfterStores(0);
    ASSERT_TRUE(crashed);
    sys.recoverHardware();
    workload->recover(sys);
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(workload->lookup(sys, ops[9].key, &got));
    EXPECT_EQ(got, ops[9].value);
    EXPECT_EQ(workload->count(sys), ops.size());
    std::string why;
    EXPECT_TRUE(workload->checkConsistency(sys, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Removable, RemoveTest,
                         ::testing::ValuesIn(removable),
                         [](const auto &info) {
                             return testName(info.param);
                         });

TEST(Remove, UnsupportedWorkloadsReportFalse)
{
    PmSystem sys;
    auto tree = makeWorkload("rbtree");
    tree->setup(sys);
    const auto value = ycsbValueFor(1, 16);
    tree->insert(sys, 5, value);
    EXPECT_FALSE(tree->remove(sys, 5));
    EXPECT_TRUE(tree->lookup(sys, 5, nullptr));
}

TEST(Remove, HeapRemoveMaxMaintainsOrder)
{
    PmSystem sys;
    MaxHeapWorkload heap;
    heap.setup(sys);
    const auto ops = ycsbLoad({.numOps = 100, .valueBytes = 16,
                               .seed = 32});
    std::multiset<std::uint64_t> keys;
    for (const auto &op : ops) {
        heap.insert(sys, op.key, op.value);
        keys.insert(op.key);
    }
    // Drain by repeatedly removing the maximum.
    while (!keys.empty()) {
        std::uint64_t top = 0;
        ASSERT_TRUE(heap.peekMax(sys, &top));
        EXPECT_EQ(top, *keys.rbegin());
        ASSERT_TRUE(heap.remove(sys, top));
        keys.erase(std::prev(keys.end()));
        std::string why;
        ASSERT_TRUE(heap.checkConsistency(sys, &why)) << why;
    }
    EXPECT_EQ(heap.count(sys), 0u);
}

TEST(Remove, DeadRegionPoisonIsLogFree)
{
    // The poison store must create no log record and no persist
    // obligation — the Pattern-1b semantics.
    PmSystem sys;
    auto ht = makeWorkload("hashtable");
    ht->setup(sys);
    const auto value = ycsbValueFor(9, 32);
    ht->insert(sys, 9, value);
    sys.quiesce();

    const auto records_before =
        sys.stats().get("txn.logRecordsCreated");
    ASSERT_TRUE(ht->remove(sys, 9));
    const auto records =
        sys.stats().get("txn.logRecordsCreated") - records_before;
    // Unlink/count records only: bucket-head (or prev) + count words;
    // the poison word adds none.
    EXPECT_LE(records, 3u);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
