/**
 * @file
 * Golden-stats regression anchors: one pinned configuration per
 * scheme (hashtable, 200 ops, 64 B values, seed 42) plus one redo
 * run, with the exact expected cycle count, PM traffic, log-record
 * count and undo-log wire bytes.
 *
 * The simulator is deterministic, so these are exact equalities. A
 * failure here means a change altered simulated behaviour — either
 * intentionally (regenerate the table below; the failure message
 * carries the new values) or as an unintended timing/traffic
 * regression that the functional tests cannot see.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace slpmt
{
namespace
{

struct GoldenCase
{
    SchemeKind scheme;
    LoggingStyle style;
    std::uint64_t cycles;
    std::uint64_t pmWriteBytes;
    std::uint64_t logRecords;
    std::uint64_t undoWireBytes;

    /** PR 10 layout anchors: the log-buffer arena's coalesce/drain
     *  activity and the metadata-index walk count. A drift here with
     *  the figure metrics unchanged means the SoA arrays or the tier
     *  arenas changed *behaviour*, not just layout. */
    std::uint64_t logbufCoalesces;
    std::uint64_t logbufTierDrains;
    std::uint64_t metaWalks;
};

// Pinned workload: hashtable, 200 ops, 64 B values, seed 42.
const GoldenCase goldenCases[] = {
    {SchemeKind::FG, LoggingStyle::Undo, 678055ull, 133600ull, 4940ull,
     52448ull, 3324ull, 29ull, 200ull},
    {SchemeKind::FG_LG, LoggingStyle::Undo, 606143ull, 87720ull, 421ull,
     6568ull, 21ull, 0ull, 200ull},
    {SchemeKind::FG_LZ, LoggingStyle::Undo, 598279ull, 129520ull,
     4940ull, 48432ull, 3324ull, 29ull, 399ull},
    {SchemeKind::SLPMT, LoggingStyle::Undo, 536265ull, 84504ull, 421ull,
     3416ull, 21ull, 0ull, 399ull},
    {SchemeKind::SLPMT_CL, LoggingStyle::Undo, 541542ull, 95704ull,
     400ull, 14616ull, 0ull, 0ull, 399ull},
    {SchemeKind::ATOM, LoggingStyle::Undo, 822872ull, 170648ull,
     1243ull, 89496ull, 0ull, 30ull, 200ull},
    {SchemeKind::EDE, LoggingStyle::Undo, 1179286ull, 184560ull,
     3993ull, 103408ull, 0ull, 0ull, 200ull},
    {SchemeKind::SLPMT, LoggingStyle::Redo, 563283ull, 90920ull, 421ull,
     9768ull, 21ull, 0ull, 403ull},
};

TEST(GoldenStats, PinnedConfigsMatchExactly)
{
    for (const GoldenCase &golden : goldenCases) {
        ExperimentConfig cfg;
        cfg.scheme = golden.scheme;
        cfg.style = golden.style;
        cfg.ycsb.numOps = 200;
        cfg.ycsb.valueBytes = 64;
        const ExperimentResult res = runExperiment("hashtable", cfg);

        const std::string label =
            schemeName(golden.scheme) +
            (golden.style == LoggingStyle::Redo ? "/redo" : "");
        EXPECT_TRUE(res.verified) << label << ": " << res.failure;
        EXPECT_EQ(res.cycles, golden.cycles) << label;
        EXPECT_EQ(res.pmWriteBytes, golden.pmWriteBytes) << label;
        EXPECT_EQ(res.logRecords, golden.logRecords) << label;
        EXPECT_EQ(res.stats.at("undolog.wireBytes"),
                  golden.undoWireBytes)
            << label;
        EXPECT_EQ(res.stats.at("logbuf.coalesces"),
                  golden.logbufCoalesces)
            << label;
        EXPECT_EQ(res.stats.at("logbuf.tierDrains"),
                  golden.logbufTierDrains)
            << label;
        EXPECT_EQ(res.stats.at("cache.metaWalks"), golden.metaWalks)
            << label;
    }
}

// -------------------------------------------------------------------
// Index-structure elision anchors: the exact Pattern-1/Pattern-2
// outcome for the log-free skiplist and blinktree per scheme on the
// same pinned shape (200 ops, 64 B values, seed 42). logRecords and
// wordsElided pin the log-free elision (Pattern-1: the annotation is
// honored exactly when the scheme allows log-free stores), lazyDrains
// pins the deferred-persist machinery (Pattern-2).
// -------------------------------------------------------------------

struct IndexGoldenCase
{
    const char *workload;
    SchemeKind scheme;
    std::uint64_t logRecords;
    std::uint64_t wordsElided;
    std::uint64_t lazyDrains;
};

const IndexGoldenCase indexGoldenCases[] = {
    {"skiplist", SchemeKind::FG, 3308ull, 0ull, 0ull},
    {"skiplist", SchemeKind::FG_LG, 254ull, 3054ull, 0ull},
    {"skiplist", SchemeKind::FG_LZ, 3308ull, 0ull, 236ull},
    {"skiplist", SchemeKind::SLPMT, 254ull, 3054ull, 236ull},
    {"skiplist", SchemeKind::SLPMT_CL, 248ull, 3054ull, 236ull},
    {"skiplist", SchemeKind::ATOM, 971ull, 0ull, 0ull},
    {"skiplist", SchemeKind::EDE, 2333ull, 0ull, 0ull},
    {"blinktree", SchemeKind::FG, 3512ull, 0ull, 0ull},
    {"blinktree", SchemeKind::FG_LG, 581ull, 2956ull, 0ull},
    {"blinktree", SchemeKind::FG_LZ, 3512ull, 0ull, 164ull},
    {"blinktree", SchemeKind::SLPMT, 581ull, 2956ull, 164ull},
    {"blinktree", SchemeKind::SLPMT_CL, 363ull, 2956ull, 164ull},
    {"blinktree", SchemeKind::ATOM, 1422ull, 0ull, 0ull},
    {"blinktree", SchemeKind::EDE, 2540ull, 0ull, 0ull},
};

TEST(GoldenStats, IndexElisionCountersMatchExactly)
{
    for (const IndexGoldenCase &golden : indexGoldenCases) {
        ExperimentConfig cfg;
        cfg.scheme = golden.scheme;
        cfg.ycsb.numOps = 200;
        cfg.ycsb.valueBytes = 64;
        const ExperimentResult res =
            runExperiment(golden.workload, cfg);

        auto stat = [&res](const char *name) {
            auto it = res.stats.find(name);
            return it == res.stats.end() ? std::uint64_t{0}
                                         : it->second;
        };
        const std::uint64_t drains = stat("txn.lazyDrain.sigHit") +
                                     stat("txn.lazyDrain.lineOwner") +
                                     stat("txn.lazyDrain.idWrap") +
                                     stat("txn.lazyDrain.eviction") +
                                     stat("txn.lazyDrain.explicit");

        const std::string label = std::string(golden.workload) + "/" +
                                  schemeName(golden.scheme);
        EXPECT_TRUE(res.verified) << label << ": " << res.failure;
        EXPECT_EQ(res.logRecords, golden.logRecords) << label;
        EXPECT_EQ(stat("txn.logFreeWordsElided"), golden.wordsElided)
            << label;
        EXPECT_EQ(drains, golden.lazyDrains) << label;
    }
}

// The structural claims behind the logfree figure, pinned: the
// schemes that honor the annotations eliminate most records outright,
// and elision/deferral track exactly which storeT operand each scheme
// supports.
TEST(GoldenStats, IndexElisionFollowsSchemeCapabilities)
{
    auto of = [](const char *workload, SchemeKind scheme) {
        for (const IndexGoldenCase &g : indexGoldenCases) {
            if (g.workload == std::string(workload) &&
                g.scheme == scheme)
                return g;
        }
        ADD_FAILURE() << "no index golden case";
        return IndexGoldenCase{};
    };
    for (const char *workload : {"skiplist", "blinktree"}) {
        const IndexGoldenCase fg = of(workload, SchemeKind::FG);
        const IndexGoldenCase lg = of(workload, SchemeKind::FG_LG);
        const IndexGoldenCase lz = of(workload, SchemeKind::FG_LZ);
        const IndexGoldenCase hw = of(workload, SchemeKind::SLPMT);
        // Log-free-by-design: the annotation-honoring schemes must
        // eliminate the overwhelming majority of the records the
        // full-logging baseline writes.
        EXPECT_LT(hw.logRecords * 5, fg.logRecords) << workload;
        // A scheme without log-free support elides nothing; a scheme
        // without lazy support drains nothing.
        EXPECT_EQ(lz.logRecords, fg.logRecords) << workload;
        EXPECT_EQ(lz.wordsElided, 0u) << workload;
        EXPECT_EQ(lg.lazyDrains, 0u) << workload;
        EXPECT_EQ(lg.logRecords, hw.logRecords) << workload;
        EXPECT_EQ(lg.wordsElided, hw.wordsElided) << workload;
    }
}

// The ordering the paper's headline claims depend on: SLPMT beats the
// baselines at both runtime and traffic on the pinned config.
TEST(GoldenStats, PinnedOrderingBetweenSchemes)
{
    auto of = [](SchemeKind scheme) {
        for (const GoldenCase &g : goldenCases) {
            if (g.scheme == scheme && g.style == LoggingStyle::Undo)
                return g;
        }
        ADD_FAILURE() << "no golden case";
        return GoldenCase{};
    };
    const GoldenCase fg = of(SchemeKind::FG);
    const GoldenCase slpmt = of(SchemeKind::SLPMT);
    const GoldenCase atom = of(SchemeKind::ATOM);
    const GoldenCase ede = of(SchemeKind::EDE);
    EXPECT_LT(slpmt.cycles, fg.cycles);
    EXPECT_LT(slpmt.cycles, atom.cycles);
    EXPECT_LT(slpmt.cycles, ede.cycles);
    EXPECT_LT(slpmt.pmWriteBytes, fg.pmWriteBytes);
    EXPECT_LT(slpmt.undoWireBytes, fg.undoWireBytes);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
