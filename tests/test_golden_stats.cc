/**
 * @file
 * Golden-stats regression anchors: one pinned configuration per
 * scheme (hashtable, 200 ops, 64 B values, seed 42) plus one redo
 * run, with the exact expected cycle count, PM traffic, log-record
 * count and undo-log wire bytes.
 *
 * The simulator is deterministic, so these are exact equalities. A
 * failure here means a change altered simulated behaviour — either
 * intentionally (regenerate the table below; the failure message
 * carries the new values) or as an unintended timing/traffic
 * regression that the functional tests cannot see.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace slpmt
{
namespace
{

struct GoldenCase
{
    SchemeKind scheme;
    LoggingStyle style;
    std::uint64_t cycles;
    std::uint64_t pmWriteBytes;
    std::uint64_t logRecords;
    std::uint64_t undoWireBytes;
};

// Pinned workload: hashtable, 200 ops, 64 B values, seed 42.
const GoldenCase goldenCases[] = {
    {SchemeKind::FG, LoggingStyle::Undo, 678055ull, 133600ull, 4940ull,
     52448ull},
    {SchemeKind::FG_LG, LoggingStyle::Undo, 606143ull, 87720ull, 421ull,
     6568ull},
    {SchemeKind::FG_LZ, LoggingStyle::Undo, 598279ull, 129520ull,
     4940ull, 48432ull},
    {SchemeKind::SLPMT, LoggingStyle::Undo, 536265ull, 84504ull, 421ull,
     3416ull},
    {SchemeKind::SLPMT_CL, LoggingStyle::Undo, 541542ull, 95704ull,
     400ull, 14616ull},
    {SchemeKind::ATOM, LoggingStyle::Undo, 822872ull, 170648ull,
     1243ull, 89496ull},
    {SchemeKind::EDE, LoggingStyle::Undo, 1179286ull, 184560ull,
     3993ull, 103408ull},
    {SchemeKind::SLPMT, LoggingStyle::Redo, 563283ull, 90920ull, 421ull,
     9768ull},
};

TEST(GoldenStats, PinnedConfigsMatchExactly)
{
    for (const GoldenCase &golden : goldenCases) {
        ExperimentConfig cfg;
        cfg.scheme = golden.scheme;
        cfg.style = golden.style;
        cfg.ycsb.numOps = 200;
        cfg.ycsb.valueBytes = 64;
        const ExperimentResult res = runExperiment("hashtable", cfg);

        const std::string label =
            schemeName(golden.scheme) +
            (golden.style == LoggingStyle::Redo ? "/redo" : "");
        EXPECT_TRUE(res.verified) << label << ": " << res.failure;
        EXPECT_EQ(res.cycles, golden.cycles) << label;
        EXPECT_EQ(res.pmWriteBytes, golden.pmWriteBytes) << label;
        EXPECT_EQ(res.logRecords, golden.logRecords) << label;
        EXPECT_EQ(res.stats.at("undolog.wireBytes"),
                  golden.undoWireBytes)
            << label;
    }
}

// The ordering the paper's headline claims depend on: SLPMT beats the
// baselines at both runtime and traffic on the pinned config.
TEST(GoldenStats, PinnedOrderingBetweenSchemes)
{
    auto of = [](SchemeKind scheme) {
        for (const GoldenCase &g : goldenCases) {
            if (g.scheme == scheme && g.style == LoggingStyle::Undo)
                return g;
        }
        ADD_FAILURE() << "no golden case";
        return GoldenCase{};
    };
    const GoldenCase fg = of(SchemeKind::FG);
    const GoldenCase slpmt = of(SchemeKind::SLPMT);
    const GoldenCase atom = of(SchemeKind::ATOM);
    const GoldenCase ede = of(SchemeKind::EDE);
    EXPECT_LT(slpmt.cycles, fg.cycles);
    EXPECT_LT(slpmt.cycles, atom.cycles);
    EXPECT_LT(slpmt.cycles, ede.cycles);
    EXPECT_LT(slpmt.pmWriteBytes, fg.pmWriteBytes);
    EXPECT_LT(slpmt.undoWireBytes, fg.undoWireBytes);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
