/**
 * @file
 * Lazy persistency semantics (Section III-C): deferred lines stay in
 * the cache past commit; they are forced to PM by working-set
 * signature hits, by accesses to lines tagged with an earlier
 * transaction ID, by transaction-ID exhaustion (the circular
 * allocator), by private-cache eviction, and by the "run four empty
 * transactions" idiom; log-buffer records of lazy lines are discarded
 * at commit.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/pm_system.hh"
#include "core/tx.hh"
#include "txn/signature.hh"

namespace slpmt
{
namespace
{

constexpr StoreFlags lazyLogFree{.lazy = true, .logFree = true};
constexpr StoreFlags lazyLogged{.lazy = true, .logFree = false};

PmSystem
makeSlpmt()
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
    return PmSystem(cfg);
}

TEST(Lazy, LazyLineStaysVolatileAfterCommit)
{
    PmSystem sys = makeSlpmt();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.writeT<std::uint64_t>(addr, 0xAAAA, lazyLogFree);
    sys.txCommit();
    // The data is in the cache but not in PM.
    const CacheLine *line = sys.hierarchy().findPrivate(addr);
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->dirty);
    EXPECT_NE(line->txnId, noTxnId);
    EXPECT_EQ(sys.peek<std::uint64_t>(addr), 0u);
    EXPECT_EQ(sys.engine().lazyOutstandingCount(), 1u);
}

TEST(Lazy, EagerLineDurableAtCommit)
{
    PmSystem sys = makeSlpmt();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.writeT<std::uint64_t>(addr, 0xBBBB,
                              {.lazy = false, .logFree = true});
    sys.txCommit();
    EXPECT_EQ(sys.peek<std::uint64_t>(addr), 0xBBBBu);
}

TEST(Lazy, StoreToWorkingSetForcesPersist)
{
    PmSystem sys = makeSlpmt();
    const Addr lazy_addr = sys.heap().alloc(64);
    const Addr dep_addr = sys.heap().alloc(64);

    sys.txBegin();
    sys.read<std::uint64_t>(dep_addr);  // dep enters the working set
    sys.writeT<std::uint64_t>(lazy_addr, 0x1234, lazyLogFree);
    sys.txCommit();
    EXPECT_EQ(sys.peek<std::uint64_t>(lazy_addr), 0u);

    // Updating the dependency (outside any transaction) must persist
    // the lazy line first.
    sys.write<std::uint64_t>(dep_addr, 7);
    EXPECT_EQ(sys.peek<std::uint64_t>(lazy_addr), 0x1234u);
    EXPECT_EQ(sys.engine().lazyOutstandingCount(), 0u);
}

TEST(Lazy, LoadOfLazyLineForcesPersist)
{
    PmSystem sys = makeSlpmt();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.writeT<std::uint64_t>(addr, 0x4321, lazyLogFree);
    sys.txCommit();

    // A later transaction *reading* the lazy line triggers the
    // line-owner check.
    sys.txBegin();
    EXPECT_EQ(sys.read<std::uint64_t>(addr), 0x4321u);
    sys.txCommit();
    EXPECT_EQ(sys.peek<std::uint64_t>(addr), 0x4321u);
}

TEST(Lazy, RemoteWriteForcesPersist)
{
    PmSystem sys = makeSlpmt();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.writeT<std::uint64_t>(addr, 0x5678, lazyLogFree);
    sys.txCommit();
    EXPECT_FALSE(sys.engine().remoteWrite(addr));
    EXPECT_EQ(sys.peek<std::uint64_t>(addr), 0x5678u);
}

TEST(Lazy, IdExhaustionForcesOldestPersist)
{
    PmSystem sys = makeSlpmt();
    std::vector<Addr> addrs;
    for (int i = 0; i < 5; ++i)
        addrs.push_back(sys.heap().alloc(64));

    // Four committed lazy transactions exhaust the 2-bit ID space;
    // the fifth begin reclaims the first transaction's ID.
    for (int i = 0; i < 4; ++i) {
        sys.txBegin();
        sys.writeT<std::uint64_t>(addrs[i], 100 + i, lazyLogFree);
        sys.txCommit();
    }
    EXPECT_EQ(sys.engine().lazyOutstandingCount(), 4u);
    EXPECT_EQ(sys.peek<std::uint64_t>(addrs[0]), 0u);

    sys.txBegin();
    sys.writeT<std::uint64_t>(addrs[4], 104, lazyLogFree);
    sys.txCommit();
    EXPECT_EQ(sys.peek<std::uint64_t>(addrs[0]), 100u);
    EXPECT_EQ(sys.stats().get("txn.idReclaims"), 1u);
}

TEST(Lazy, RepeatedIdWraparoundForcesOldestEachTime)
{
    // The 2-bit circular allocator wraps every four transactions; a
    // long run of lazy transactions must force exactly the oldest
    // outstanding data out at every wrap, keeping at most four
    // transactions volatile at any moment.
    PmSystem sys = makeSlpmt();
    constexpr int rounds = 16;
    std::vector<Addr> addrs;
    for (int i = 0; i < rounds; ++i)
        addrs.push_back(sys.heap().alloc(64));

    for (int i = 0; i < rounds; ++i) {
        sys.txBegin();
        sys.writeT<std::uint64_t>(addrs[i], 100 + i, lazyLogFree);
        sys.txCommit();

        // Everything older than the last four transactions has been
        // reclaimed and is durable; the newest four are volatile.
        for (int j = 0; j <= i; ++j) {
            const auto expect =
                j <= i - 4 ? static_cast<std::uint64_t>(100 + j) : 0u;
            EXPECT_EQ(sys.peek<std::uint64_t>(addrs[j]), expect)
                << "txn " << j << " after committing txn " << i;
        }
        EXPECT_LE(sys.engine().lazyOutstandingCount(), 4u);
    }
    EXPECT_EQ(sys.stats().get("txn.idReclaims"),
              static_cast<std::uint64_t>(rounds - 4));

    // Wraparound left no stale IDs behind: a full flush drains the
    // remaining four and the data survives a crash.
    sys.engine().persistAllLazy();
    sys.crash();
    sys.recoverHardware();
    for (int i = 0; i < rounds; ++i)
        EXPECT_EQ(sys.peek<std::uint64_t>(addrs[i]),
                  static_cast<std::uint64_t>(100 + i));
}

TEST(Lazy, SingleIdConfigDegeneratesToEagerFlush)
{
    // numTxnIds = 1: every transaction begin must reclaim the single
    // ID, forcing the previous transaction's lazy data out — lazy
    // persistency degenerates to an eager flush one transaction late.
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
    cfg.scheme.numTxnIds = 1;
    PmSystem sys{cfg};

    std::vector<Addr> addrs;
    for (int i = 0; i < 5; ++i)
        addrs.push_back(sys.heap().alloc(64));

    for (int i = 0; i < 5; ++i) {
        sys.txBegin();
        sys.writeT<std::uint64_t>(addrs[i], 200 + i, lazyLogFree);
        sys.txCommit();
        EXPECT_EQ(sys.engine().lazyOutstandingCount(), 1u);
        if (i > 0) {
            EXPECT_EQ(sys.peek<std::uint64_t>(addrs[i - 1]),
                      static_cast<std::uint64_t>(200 + i - 1));
        }
    }
    EXPECT_EQ(sys.stats().get("txn.idReclaims"), 4u);
}

TEST(Lazy, BloomFalsePositiveForcesHarmlessPersist)
{
    // Signatures are Bloom filters: an address that was never in the
    // working set can still hit. Build a mirror signature with the
    // same shared hash functions, brute-force a colliding line, and
    // check the false positive costs only an early (harmless) persist
    // of the lazy data — never a missed one.
    PmSystem sys = makeSlpmt();
    constexpr int lines = 400;

    Signature mirror;
    std::vector<Addr> addrs;
    for (int i = 0; i < lines; ++i)
        addrs.push_back(sys.heap().alloc(cacheLineSize));

    sys.txBegin();
    for (int i = 0; i < lines; ++i) {
        sys.writeT<std::uint64_t>(addrs[i], 500 + i, lazyLogFree);
        mirror.insert(lineBase(addrs[i]));
    }
    sys.txCommit();
    ASSERT_EQ(sys.engine().lazyOutstandingCount(), 1u);

    // Find a line the filter claims to contain but that was never
    // inserted. With 400 lines in a 2048-bit/4-hash filter the false
    // positive rate is a few percent, so a bounded scan always finds
    // one.
    Addr candidate = 0;
    for (int tries = 0; tries < 20000; ++tries) {
        const Addr a = sys.heap().alloc(cacheLineSize);
        if (mirror.mightContain(lineBase(a))) {
            candidate = a;
            break;
        }
    }
    ASSERT_NE(candidate, 0u) << "no Bloom false positive found";

    const auto hits_before = sys.stats().get("txn.signatureHits");
    sys.write<std::uint64_t>(candidate, 1);
    EXPECT_GT(sys.stats().get("txn.signatureHits"), hits_before);
    EXPECT_EQ(sys.engine().lazyOutstandingCount(), 0u);
    for (int i = 0; i < lines; ++i)
        EXPECT_EQ(sys.peek<std::uint64_t>(addrs[i]),
                  static_cast<std::uint64_t>(500 + i));
}

TEST(Lazy, FourEmptyTransactionsFlushEverything)
{
    // Section III-C4: running numTxnIds empty transactions makes all
    // lazily persistent data durable.
    PmSystem sys = makeSlpmt();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.writeT<std::uint64_t>(addr, 0x7777, lazyLogFree);
    sys.txCommit();
    for (int i = 0; i < 4; ++i) {
        sys.txBegin();
        sys.txCommit();
    }
    EXPECT_EQ(sys.peek<std::uint64_t>(addr), 0x7777u);
}

TEST(Lazy, PersistAllLazyFlushes)
{
    PmSystem sys = makeSlpmt();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.writeT<std::uint64_t>(addr, 0x8888, lazyLogFree);
    sys.txCommit();
    sys.engine().persistAllLazy();
    EXPECT_EQ(sys.peek<std::uint64_t>(addr), 0x8888u);
    EXPECT_EQ(sys.engine().lazyOutstandingCount(), 0u);
}

TEST(Lazy, OrderedPersistOldestFirst)
{
    // Forcing a newer transaction's lazy data also persists all data
    // owned by earlier transactions (Section III-C2).
    PmSystem sys = makeSlpmt();
    const Addr a1 = sys.heap().alloc(64);
    const Addr a2 = sys.heap().alloc(64);
    sys.txBegin();
    sys.writeT<std::uint64_t>(a1, 1, lazyLogFree);
    sys.txCommit();
    sys.txBegin();
    sys.writeT<std::uint64_t>(a2, 2, lazyLogFree);
    sys.txCommit();

    sys.tracker().enable();
    sys.write<std::uint64_t>(a2, 22);  // hits txn 2's working set
    sys.tracker().disable();
    // Both lazy lines persisted, oldest transaction first.
    const auto &ledger = sys.tracker().ledger();
    std::vector<Addr> lazy_order;
    for (const auto &ev : ledger) {
        if (ev.kind == PersistKind::LazyLine)
            lazy_order.push_back(ev.addr);
    }
    ASSERT_EQ(lazy_order.size(), 2u);
    EXPECT_EQ(lazy_order[0], lineBase(a1));
    EXPECT_EQ(lazy_order[1], lineBase(a2));
}

TEST(Lazy, LogRecordsOfLazyLinesDiscardedAtCommit)
{
    PmSystem sys = makeSlpmt();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.writeT<std::uint64_t>(addr, 0x9999, lazyLogged);
    EXPECT_EQ(sys.stats().get("txn.logRecordsCreated"), 1u);
    sys.txCommit();
    EXPECT_EQ(sys.stats().get("logbuf.recordsDiscarded"), 1u);
    // The undo log is truncated and the record never reached it.
    EXPECT_TRUE(sys.engine().logArea().empty());
}

TEST(Lazy, LoggedLazyLineRecoverableFromUndoAfterMidTxnCrash)
{
    PmSystem sys = makeSlpmt();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 0x1111);
    sys.txCommit();
    sys.quiesce();

    sys.txBegin();
    sys.writeT<std::uint64_t>(addr, 0x2222, lazyLogged);
    // Evict mid-transaction: record flushed, line leaves the caches.
    sys.engine().advance(sys.hierarchy().flushAll(sys.engine().now()));
    sys.crash();
    sys.recoverHardware();
    EXPECT_EQ(sys.peek<std::uint64_t>(addr), 0x1111u);
}

TEST(Lazy, EvictionForcesLazyLineOut)
{
    PmSystem sys = makeSlpmt();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.writeT<std::uint64_t>(addr, 0xCCCC, lazyLogFree);
    sys.txCommit();
    sys.engine().advance(sys.hierarchy().flushAll(sys.engine().now()));
    EXPECT_EQ(sys.peek<std::uint64_t>(addr), 0xCCCCu);
}

TEST(Lazy, CurrentTransactionNotForcedByOwnAccesses)
{
    PmSystem sys = makeSlpmt();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.writeT<std::uint64_t>(addr, 1, lazyLogFree);
    sys.read<std::uint64_t>(addr);
    sys.writeT<std::uint64_t>(addr, 2, lazyLogFree);
    EXPECT_EQ(sys.stats().get("txn.lazyForcedPersists"), 0u);
    sys.txCommit();
}

TEST(Lazy, MixedLineEagerStoreCancelsLazy)
{
    // The false-sharing effect the paper describes for rbtree colours:
    // an eager store to any word of the line sets the persist bit, so
    // the whole line is persisted at commit.
    PmSystem sys = makeSlpmt();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.writeT<std::uint64_t>(addr, 0xAA, lazyLogged);
    sys.write<std::uint64_t>(addr + 8, 0xBB);
    sys.txCommit();
    EXPECT_EQ(sys.peek<std::uint64_t>(addr), 0xAAu);
    EXPECT_EQ(sys.peek<std::uint64_t>(addr + 8), 0xBBu);
    EXPECT_EQ(sys.engine().lazyOutstandingCount(), 0u);
}

TEST(Lazy, DisabledSchemeIgnoresLazyFlag)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(SchemeKind::FG_LG);  // no lazy
    PmSystem sys(cfg);
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.writeT<std::uint64_t>(addr, 0xDD, lazyLogFree);
    sys.txCommit();
    EXPECT_EQ(sys.peek<std::uint64_t>(addr), 0xDDu);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
