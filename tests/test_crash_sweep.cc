/**
 * @file
 * Tests of the crash-point explorer itself: clean sampled sweeps over
 * every scheme family (the recovery guarantee), bit-identical parallel
 * determinism, oracle discrimination against deliberately broken
 * recovery paths, and the underlying work-stealing queue and JSON
 * writer.
 */

#include <atomic>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/json.hh"
#include "validate/crash_explorer.hh"
#include "validate/work_queue.hh"
#include "workloads/factory.hh"

namespace slpmt
{
namespace
{

/** The standard sweep configuration the suite uses: big enough values
 *  that rbtree rebalancing transactions self-evict under the tiny
 *  cache (so hardware log replay actually runs), small enough to keep
 *  a multi-scheme sampled sweep inside tier-1 time. */
CrashSweepConfig
sweepConfig(SchemeKind scheme, LoggingStyle style,
            const std::string &workload)
{
    CrashSweepConfig cfg;
    cfg.scheme = scheme;
    cfg.style = style;
    cfg.workload = workload;
    cfg.mix.numOps = 60;
    cfg.mix.valueBytes = 256;
    cfg.mix.seed = 42;
    cfg.mix.insertPct = 80;
    cfg.mix.updatePct = 12;
    cfg.mix.removePct = 8;
    cfg.maxPoints = 100;
    cfg.tinyCache = true;
    return cfg;
}

/** Sweep one scheme over both workloads; returns total points. */
std::size_t
expectCleanSweeps(SchemeKind scheme, LoggingStyle style,
                  std::uint64_t *replays_out = nullptr)
{
    std::size_t points = 0;
    std::uint64_t replays = 0;
    for (const std::string workload : {"hashtable", "rbtree"}) {
        const auto report =
            runCrashSweep(sweepConfig(scheme, style, workload));
        EXPECT_EQ(report.violationCount(), 0u)
            << report.violationsText();
        EXPECT_GE(report.pointsExplored(), 100u);
        points += report.pointsExplored();
        replays += report.replayedRecordsTotal();
    }
    if (replays_out)
        *replays_out = replays;
    return points;
}

TEST(CrashSweep, SlpmtUndoRecoversEverySampledPoint)
{
    std::uint64_t replays = 0;
    const std::size_t points =
        expectCleanSweeps(SchemeKind::SLPMT, LoggingStyle::Undo,
                          &replays);
    EXPECT_GE(points, 200u);
    // The sweep must exercise the hardware replay path, not just
    // crash points where the persistent log happens to be empty.
    EXPECT_GT(replays, 0u);
}

TEST(CrashSweep, FullLoggingUndoRecoversEverySampledPoint)
{
    std::uint64_t replays = 0;
    const std::size_t points =
        expectCleanSweeps(SchemeKind::FG, LoggingStyle::Undo,
                          &replays);
    EXPECT_GE(points, 200u);
    EXPECT_GT(replays, 0u);
}

TEST(CrashSweep, RedoStyleRecoversEverySampledPoint)
{
    const std::size_t points =
        expectCleanSweeps(SchemeKind::FG, LoggingStyle::Redo);
    EXPECT_GE(points, 200u);
}

TEST(CrashSweep, LazyCacheLineGrainRecoversEverySampledPoint)
{
    expectCleanSweeps(SchemeKind::SLPMT_CL, LoggingStyle::Undo);
}

/** Dedicated index-structure sweeps: the log-free skiplist and
 *  blinktree under a remove-bearing mix, across the logging baseline
 *  and the full hardware scheme in both styles. Removes matter here —
 *  they drive the unlink/unpublish paths whose final-store-commits
 *  contract the structures' crash consistency rests on. */
TEST(CrashSweep, IndexStructuresSurviveRemoveBearingSweeps)
{
    for (const auto &workload : indexWorkloads()) {
        for (SchemeKind scheme : {SchemeKind::FG, SchemeKind::SLPMT}) {
            for (LoggingStyle style :
                 {LoggingStyle::Undo, LoggingStyle::Redo}) {
                CrashSweepConfig cfg =
                    sweepConfig(scheme, style, workload);
                cfg.mix.numOps = 40;
                cfg.mix.insertPct = 55;
                cfg.mix.updatePct = 15;
                cfg.mix.removePct = 30;
                cfg.maxPoints = 40;
                const auto report = runCrashSweep(cfg);
                EXPECT_EQ(report.violationCount(), 0u)
                    << workload << "/" << schemeName(scheme) << ":\n"
                    << report.violationsText();
                EXPECT_GE(report.pointsExplored(), 40u) << workload;
            }
        }
    }
}

/** Broader, shallower pass: every registered workload survives a
 *  sampled sweep under the full SLPMT scheme. */
TEST(CrashSweep, EveryWorkloadSurvivesSampledCrashes)
{
    for (const auto &workload : allWorkloads()) {
        CrashSweepConfig cfg = sweepConfig(
            SchemeKind::SLPMT, LoggingStyle::Undo, workload);
        cfg.mix.numOps = 30;
        cfg.maxPoints = 25;
        const auto report = runCrashSweep(cfg);
        EXPECT_EQ(report.violationCount(), 0u)
            << workload << ":\n"
            << report.violationsText();
    }
}

/** The post-completion point (sentinel 0) crashes with lazily
 *  persistent data still volatile; user recovery must rebuild it. */
TEST(CrashSweep, PostCompletionCrashRecoversLazyData)
{
    const auto cfg = sweepConfig(SchemeKind::SLPMT,
                                 LoggingStyle::Undo, "hashtable");
    const auto out = runCrashPoint(cfg, 0);
    EXPECT_FALSE(out.fired);
    EXPECT_EQ(out.violations.size(), 0u);
    EXPECT_GT(out.committedOps, 0u);
}

/**
 * Same sweep, 1 worker vs 4 workers: the violation report and every
 * per-point outcome must be bit-identical regardless of scheduling.
 * Wall times and speedup land in a JSON report for inspection.
 */
TEST(CrashSweep, ParallelSweepIsBitIdenticalToSerial)
{
    CrashSweepConfig serial_cfg =
        sweepConfig(SchemeKind::SLPMT, LoggingStyle::Undo, "rbtree");
    serial_cfg.workers = 1;
    CrashSweepConfig parallel_cfg = serial_cfg;
    parallel_cfg.workers = 4;

    const auto serial = runCrashSweep(serial_cfg);
    const auto parallel = runCrashSweep(parallel_cfg);

    EXPECT_EQ(serial.violationsText(), parallel.violationsText());
    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        const auto &a = serial.points[i];
        const auto &b = parallel.points[i];
        EXPECT_EQ(a.crashPoint, b.crashPoint);
        EXPECT_EQ(a.fired, b.fired);
        EXPECT_EQ(a.committedOps, b.committedOps);
        EXPECT_EQ(a.replayedRecords, b.replayedRecords);
        EXPECT_EQ(a.stats, b.stats);
    }

    JsonWriter w;
    w.beginObject();
    w.key("serial_wall_ms").value(serial.wallMs);
    w.key("parallel_wall_ms").value(parallel.wallMs);
    w.key("speedup").value(parallel.wallMs > 0.0
                               ? serial.wallMs / parallel.wallMs
                               : 0.0);
    w.key("hardware_threads")
        .value(std::thread::hardware_concurrency());
    w.key("points").value(serial.points.size());
    w.endObject();
    std::ofstream("crash_sweep_determinism.json") << w.str() << "\n";
}

/** On a real multicore host the 4-worker sweep must be clearly
 *  faster; single-core CI boxes skip the timing half. */
TEST(CrashSweep, ParallelSweepSpeedsUpOnMulticore)
{
    if (std::thread::hardware_concurrency() < 4)
        GTEST_SKIP() << "needs >= 4 hardware threads for a "
                        "meaningful speedup measurement";

    CrashSweepConfig cfg =
        sweepConfig(SchemeKind::SLPMT, LoggingStyle::Undo, "rbtree");
    cfg.mix.numOps = 120;
    cfg.maxPoints = 200;
    cfg.workers = 1;
    const auto serial = runCrashSweep(cfg);
    cfg.workers = 4;
    const auto parallel = runCrashSweep(cfg);
    EXPECT_EQ(serial.violationsText(), parallel.violationsText());
    EXPECT_GE(serial.wallMs / parallel.wallMs, 2.0)
        << "serial " << serial.wallMs << " ms vs parallel "
        << parallel.wallMs << " ms";
}

/**
 * Oracle discrimination: a recovery path with the hardware log replay
 * deliberately skipped must be caught. The FG/rbtree/tiny-cache sweep
 * is the one whose points genuinely depend on undo replay (dirty
 * rebalancing lines overflow to PM mid-transaction).
 */
TEST(CrashSweep, SkippedHardwareReplayIsCaught)
{
    CrashSweepConfig cfg =
        sweepConfig(SchemeKind::FG, LoggingStyle::Undo, "rbtree");
    cfg.skipHardwareReplay = true;
    const auto report = runCrashSweep(cfg);
    EXPECT_GT(report.violationCount(), 0u)
        << "a sweep with hardware recovery disabled reported clean -- "
           "the oracle discriminates nothing";

    // The printed tuple must reproduce in isolation.
    for (const auto &p : report.points) {
        if (p.violations.empty())
            continue;
        const auto again = runCrashPoint(cfg, p.crashPoint);
        EXPECT_EQ(again.violations, p.violations);
        break;
    }
}

/** Skipping the user-level (log-free / lazy data) recovery pass must
 *  equally be caught under selective logging. */
TEST(CrashSweep, SkippedUserRecoveryIsCaught)
{
    CrashSweepConfig cfg = sweepConfig(SchemeKind::SLPMT,
                                       LoggingStyle::Undo, "rbtree");
    cfg.skipUserRecovery = true;
    const auto report = runCrashSweep(cfg);
    EXPECT_GT(report.violationCount(), 0u)
        << "a sweep with user-level recovery disabled reported clean";
}

TEST(CrashSweep, ReportJsonIsWellFormed)
{
    CrashSweepConfig cfg = sweepConfig(SchemeKind::SLPMT,
                                       LoggingStyle::Undo, "hashtable");
    cfg.mix.numOps = 10;
    cfg.maxPoints = 5;
    const auto report = runCrashSweep(cfg);
    const std::string json = report.toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"scheme\":\"SLPMT\""), std::string::npos);
    EXPECT_NE(json.find("\"violation_lines\":[]"), std::string::npos);
    EXPECT_NE(json.find("\"points\":["), std::string::npos);
}

// ---------------------------------------------------------------------
// Work-stealing queue
// ---------------------------------------------------------------------

TEST(WorkQueue, EveryItemRunsExactlyOnce)
{
    for (std::size_t workers : {1u, 2u, 3u, 4u, 8u}) {
        constexpr std::size_t n = 500;
        std::vector<std::atomic<int>> hits(n);
        for (auto &h : hits)
            h = 0;
        runWorkStealing(workers, n,
                        [&](std::size_t i) { hits[i]++; });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1)
                << "item " << i << " with " << workers << " workers";
    }
}

TEST(WorkQueue, UnevenItemCostsStillComplete)
{
    constexpr std::size_t n = 64;
    std::atomic<std::size_t> done{0};
    runWorkStealing(4, n, [&](std::size_t i) {
        // Front-loaded cost: stealing from the busy worker matters.
        volatile std::uint64_t x = 0;
        for (std::size_t k = 0; k < (i < 4 ? 200000u : 100u); ++k)
            x += k;
        done++;
    });
    EXPECT_EQ(done.load(), n);
}

TEST(WorkQueue, ZeroAndSingleItemEdgeCases)
{
    std::atomic<std::size_t> done{0};
    runWorkStealing(4, 0, [&](std::size_t) { done++; });
    EXPECT_EQ(done.load(), 0u);
    runWorkStealing(4, 1, [&](std::size_t) { done++; });
    EXPECT_EQ(done.load(), 1u);
}

// ---------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------

TEST(JsonWriter, ObjectsArraysAndEscapes)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("a\"b\\c\nd");
    w.key("n").value(std::uint64_t{42});
    w.key("pi").value(3.5);
    w.key("ok").value(true);
    w.key("list").beginArray().value(1ULL).value(2ULL).endArray();
    w.key("nested").beginObject().key("x").value(false).endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"a\\\"b\\\\c\\nd\",\"n\":42,\"pi\":3.500,"
              "\"ok\":true,\"list\":[1,2],\"nested\":{\"x\":false}}");
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
