/**
 * @file
 * Unit tests for the durable undo-log area: append/scan round trips,
 * O(1) truncation, reverse-order replay, tail recovery after a crash,
 * and overflow protection.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/logging.hh"
#include "stats/stats.hh"
#include "txn/undo_log_area.hh"

namespace slpmt
{
namespace
{

class UndoLogTest : public ::testing::Test
{
  protected:
    UndoLogTest()
        : pm(PmConfig{}, stats, tracker),
          log(pm, 0x1000, 64 * 1024, stats)
    {
    }

    LogRecord
    record(Addr base, std::uint8_t words, std::uint64_t fill)
    {
        LogRecord rec;
        rec.base = base;
        rec.words = words;
        for (std::size_t w = 0; w < words; ++w)
            std::memcpy(rec.data.data() + w * wordSize, &fill,
                        wordSize);
        return rec;
    }

    StatsRegistry stats;
    PersistTracker tracker;
    PmDevice pm;
    UndoLogArea log;
};

TEST_F(UndoLogTest, EmptyAfterInitialize)
{
    EXPECT_TRUE(log.empty());
    EXPECT_TRUE(log.scanValid().empty());
}

TEST_F(UndoLogTest, AppendScanRoundTrip)
{
    log.append(record(0x20000, 1, 0xAA), 0, 1);
    log.append(record(0x20040, 2, 0xBB), 0, 1);
    log.append(record(0x20080, 8, 0xCC), 0, 1);
    const auto records = log.scanValid();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].base, 0x20000u);
    EXPECT_EQ(records[0].words, 1u);
    EXPECT_EQ(records[1].base, 0x20040u);
    EXPECT_EQ(records[1].words, 2u);
    EXPECT_EQ(records[2].words, 8u);
    std::uint64_t v = 0;
    std::memcpy(&v, records[1].data.data(), sizeof(v));
    EXPECT_EQ(v, 0xBBu);
}

TEST_F(UndoLogTest, TruncateEmptiesLog)
{
    log.append(record(0x20000, 1, 1), 0, 1);
    log.truncate(0, 1);
    EXPECT_TRUE(log.empty());
    // The area is reusable afterwards.
    log.append(record(0x30000, 4, 2), 0, 2);
    ASSERT_EQ(log.scanValid().size(), 1u);
    EXPECT_EQ(log.scanValid()[0].base, 0x30000u);
}

TEST_F(UndoLogTest, ApplyUndoRestoresValues)
{
    const std::uint64_t orig = 0x0123456789ABCDEFULL;
    pm.poke(0x20000, &orig, sizeof(orig));
    log.append(record(0x20000, 1, orig), 0, 1);
    const std::uint64_t clobber = 0xFFFFFFFFFFFFFFFFULL;
    pm.poke(0x20000, &clobber, sizeof(clobber));

    EXPECT_EQ(log.applyUndo(), 1u);
    std::uint64_t v = 0;
    pm.peek(0x20000, &v, sizeof(v));
    EXPECT_EQ(v, orig);
    EXPECT_TRUE(log.empty());
}

TEST_F(UndoLogTest, ReverseReplayMakesOldestWin)
{
    // Two records for the same word: the first (oldest) holds the
    // pre-transaction value and must win.
    log.append(record(0x20000, 1, 0x1111), 0, 1);  // oldest
    log.append(record(0x20000, 1, 0x2222), 0, 1);  // duplicate, newer
    log.applyUndo();
    std::uint64_t v = 0;
    pm.peek(0x20000, &v, sizeof(v));
    EXPECT_EQ(v, 0x1111u);
}

TEST_F(UndoLogTest, CrashRecomputesTail)
{
    log.append(record(0x20000, 1, 1), 0, 1);
    log.append(record(0x20040, 2, 2), 0, 1);
    log.crash();  // volatile tail lost; rescan
    // Appending after the crash lands after the surviving entries.
    log.append(record(0x20080, 1, 3), 0, 2);
    const auto records = log.scanValid();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[2].base, 0x20080u);
}

TEST_F(UndoLogTest, DiscardDropsWithoutApplying)
{
    const std::uint64_t clobber = 0xDEAD;
    pm.poke(0x20000, &clobber, sizeof(clobber));
    log.append(record(0x20000, 1, 0x1111), 0, 1);
    log.discard();
    EXPECT_TRUE(log.empty());
    std::uint64_t v = 0;
    pm.peek(0x20000, &v, sizeof(v));
    EXPECT_EQ(v, 0xDEADu);  // untouched
}

TEST_F(UndoLogTest, OverflowPanics)
{
    StatsRegistry local;
    PersistTracker t;
    PmDevice small_pm(PmConfig{}, local, t);
    UndoLogArea small(small_pm, 0x1000, 128, local);
    small.append(record(0x20000, 8, 1), 0, 1);  // 72 B + terminator
    EXPECT_THROW(small.append(record(0x20080, 8, 2), 0, 1), PanicError);
}

TEST_F(UndoLogTest, ExtraFramingCountsInTrafficOnly)
{
    const auto before = stats.get("pm.logBytesWritten");
    log.append(record(0x20000, 1, 1), 0, 1, /*extra_bytes=*/8);
    EXPECT_EQ(stats.get("pm.logBytesWritten") - before, 16u + 8u);
    // The layout is unchanged: the record still scans back.
    ASSERT_EQ(log.scanValid().size(), 1u);
}

TEST_F(UndoLogTest, WordValuesSurviveExactly)
{
    LogRecord rec = record(0x20000, 4, 0);
    for (std::size_t i = 0; i < 32; ++i)
        rec.data[i] = static_cast<std::uint8_t>(i * 3 + 1);
    log.append(rec, 0, 1);
    const auto back = log.scanValid();
    ASSERT_EQ(back.size(), 1u);
    for (std::size_t i = 0; i < 32; ++i)
        EXPECT_EQ(back[0].data[i], static_cast<std::uint8_t>(i * 3 + 1));
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
