/**
 * @file
 * Unit tests for the common utilities: types/address helpers, the
 * deterministic RNG, the stats registry, and the sparse paged memory.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "stats/stats.hh"
#include "common/types.hh"
#include "mem/paged_memory.hh"

namespace slpmt
{
namespace
{

TEST(Types, AddressHelpers)
{
    EXPECT_EQ(lineBase(0x1000), 0x1000u);
    EXPECT_EQ(lineBase(0x103F), 0x1000u);
    EXPECT_EQ(lineBase(0x1040), 0x1040u);
    EXPECT_EQ(lineOffset(0x103F), 63u);
    EXPECT_EQ(wordBase(0x100F), 0x1008u);
    EXPECT_EQ(wordIndex(0x1000), 0u);
    EXPECT_EQ(wordIndex(0x1038), 7u);
    EXPECT_EQ(wordIndex(0x103F), 7u);
}

TEST(Types, CycleConversion)
{
    // 2 GHz clock: 1 ns = 2 cycles.
    EXPECT_EQ(nsToCycles(1), 2u);
    EXPECT_EQ(nsToCycles(500), 1000u);
    EXPECT_EQ(nsToCycles(0), 0u);
}

TEST(Types, RoundUpToLines)
{
    EXPECT_EQ(roundUpToLines(0), 0u);
    EXPECT_EQ(roundUpToLines(1), 64u);
    EXPECT_EQ(roundUpToLines(64), 64u);
    EXPECT_EQ(roundUpToLines(65), 128u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, Mix64IsStateless)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
}

TEST(Stats, CountersAccumulate)
{
    StatsRegistry stats;
    auto c = stats.counter("a.b");
    c += 5;
    c++;
    EXPECT_EQ(stats.get("a.b"), 6u);
    EXPECT_EQ(c.get(), 6u);
}

TEST(Stats, UnknownCounterReadsZero)
{
    StatsRegistry stats;
    EXPECT_EQ(stats.get("never.created"), 0u);
}

TEST(Stats, SnapshotDelta)
{
    StatsRegistry stats;
    auto c = stats.counter("x");
    c += 10;
    const auto before = stats.snapshot();
    c += 7;
    const auto after = stats.snapshot();
    const auto delta = StatsRegistry::delta(before, after);
    EXPECT_EQ(delta.at("x"), 7u);
}

TEST(Stats, ResetZeroesValues)
{
    StatsRegistry stats;
    auto c = stats.counter("x");
    c += 3;
    stats.reset();
    EXPECT_EQ(stats.get("x"), 0u);
    c += 2;  // handles stay valid across reset
    EXPECT_EQ(stats.get("x"), 2u);
}

TEST(PagedMemory, UntouchedReadsZero)
{
    PagedMemory mem;
    std::uint64_t v = 0xdead;
    mem.read(0x123456, &v, sizeof(v));
    EXPECT_EQ(v, 0u);
    EXPECT_EQ(mem.pageCount(), 0u);
}

TEST(PagedMemory, WriteReadRoundTrip)
{
    PagedMemory mem;
    const std::uint64_t v = 0x1122334455667788ULL;
    mem.write(0x8000, &v, sizeof(v));
    std::uint64_t r = 0;
    mem.read(0x8000, &r, sizeof(r));
    EXPECT_EQ(r, v);
}

TEST(PagedMemory, CrossPageAccess)
{
    PagedMemory mem;
    std::vector<std::uint8_t> data(PagedMemory::pageSize + 100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    const Addr addr = PagedMemory::pageSize - 50;
    mem.write(addr, data.data(), data.size());
    std::vector<std::uint8_t> readback(data.size());
    mem.read(addr, readback.data(), readback.size());
    EXPECT_EQ(readback, data);
    EXPECT_GE(mem.pageCount(), 2u);
}

TEST(PagedMemory, ClearDropsEverything)
{
    PagedMemory mem;
    const std::uint64_t v = 42;
    mem.write(0, &v, sizeof(v));
    mem.clear();
    std::uint64_t r = 1;
    mem.read(0, &r, sizeof(r));
    EXPECT_EQ(r, 0u);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
