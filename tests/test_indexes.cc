/**
 * @file
 * Test tier for the log-free-by-design index structures (skiplist,
 * blinktree). Four families:
 *
 *  - Differential: a seeded mixed trace against a std::map shadow
 *    oracle, clean and crash-interrupted, across every scheme and
 *    both logging styles. The shadow advances only when an operation
 *    returns, so a crash-interrupted op must leave no visible effect
 *    — exactly the single-atomic-store publication contract.
 *  - Determinism: the same trace leaves a byte-identical durable PM
 *    image on every rerun (clean and crashed) — the property the
 *    checkpointed crash sweeps and the figure harness rely on.
 *  - Repair: the writers-fix-inconsistency routines actually run —
 *    skiplist tower rewiring and dead-mark clearing, blinktree
 *    sibling attachment, residue sweeps and recounts — observed
 *    through the workloads' RepairStats.
 *  - Compiler patterns and checker negatives: Pattern-1/Pattern-2
 *    prove the annotated sites and refuse the deep-semantics ones;
 *    corrupted images are caught by the consistency checkers.
 */

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "compiler/compiler_policy.hh"
#include "core/pm_system.hh"
#include "test_util.hh"
#include "workloads/blinktree.hh"
#include "workloads/factory.hh"
#include "workloads/skiplist.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{
namespace
{

using Shadow = std::map<std::uint64_t, std::vector<std::uint8_t>>;

const SchemeKind allSchemes[] = {
    SchemeKind::FG,   SchemeKind::FG_LG,    SchemeKind::FG_LZ,
    SchemeKind::SLPMT, SchemeKind::SLPMT_CL, SchemeKind::ATOM,
    SchemeKind::EDE};

const LoggingStyle bothStyles[] = {LoggingStyle::Undo,
                                   LoggingStyle::Redo};

SystemConfig
configFor(SchemeKind kind, LoggingStyle style)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(kind);
    cfg.style = style;
    return cfg;
}

/** The shared mixed trace: inserts, updates and removes on a small
 *  key space so all three op kinds hit present keys. */
std::vector<YcsbMixedOp>
indexTrace()
{
    YcsbMixConfig mix;
    mix.numOps = 90;
    mix.valueBytes = 48;
    mix.seed = 29;
    mix.insertPct = 55;
    mix.updatePct = 25;
    mix.removePct = 20;
    return ycsbMixedLoad(mix);
}

/** Apply one op; the shadow advances only after the op returns. */
void
applyOp(PmContext &sys, Workload &wl, const YcsbMixedOp &op,
        Shadow *shadow)
{
    switch (op.kind) {
      case YcsbOpKind::Insert:
        wl.insert(sys, op.key, op.value);
        (*shadow)[op.key] = op.value;
        break;
      case YcsbOpKind::Update:
        if (wl.update(sys, op.key, op.value))
            (*shadow)[op.key] = op.value;
        break;
      case YcsbOpKind::Remove:
        if (wl.remove(sys, op.key))
            shadow->erase(op.key);
        break;
    }
}

/** Full logical-state comparison against the shadow: every shadow
 *  key present with its value, every other trace key absent. */
void
expectMatchesShadow(const std::string &name, PmSystem &sys, Workload &wl,
                    const std::vector<YcsbMixedOp> &trace,
                    const Shadow &shadow)
{
    EXPECT_EQ(wl.count(sys), shadow.size()) << name;
    std::vector<std::uint8_t> got;
    for (const auto &[key, expected] : shadow) {
        got.clear();
        ASSERT_TRUE(wl.lookup(sys, key, &got)) << name << " key " << key;
        EXPECT_EQ(got, expected) << name << " key " << key;
    }
    std::set<std::uint64_t> absent;
    for (const auto &op : trace)
        absent.insert(op.key);
    for (const auto &[key, value] : shadow)
        absent.erase(key);
    for (std::uint64_t key : absent)
        EXPECT_FALSE(wl.lookup(sys, key, nullptr)) << name << " key "
                                                   << key;
    std::string why;
    EXPECT_TRUE(wl.checkConsistency(sys, &why)) << name << ": " << why;
}

/** FNV-1a over the durable pages in ascending address order. */
std::uint64_t
pmFingerprint(PmSystem &sys)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto fold = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    sys.pm().memory().forEachPageSorted(
        [&](Addr page, const PagedMemory::Page &data) {
            fold(page);
            for (std::uint8_t byte : data) {
                h ^= byte;
                h *= 0x100000001b3ULL;
            }
        });
    return h;
}

// -------------------------------------------------------------------
// Clean differential across every scheme and both styles
// -------------------------------------------------------------------

class IndexDifferential : public ::testing::TestWithParam<std::string>
{
};

TEST_P(IndexDifferential, MixedTraceMatchesShadowUnderEveryScheme)
{
    const auto trace = indexTrace();
    for (SchemeKind scheme : allSchemes) {
        for (LoggingStyle style : bothStyles) {
            PmSystem sys(configFor(scheme, style));
            auto wl = makeWorkload(GetParam());
            wl->setup(sys);
            Shadow shadow;
            for (const auto &op : trace)
                applyOp(sys, *wl, op, &shadow);
            expectMatchesShadow(GetParam() + "/" + schemeName(scheme),
                                sys, *wl, trace, shadow);
        }
    }
}

// -------------------------------------------------------------------
// Crashed differential: sampled mid-trace crash points
// -------------------------------------------------------------------

class IndexCrash : public ::testing::TestWithParam<std::string>
{
};

TEST_P(IndexCrash, InterruptedOpLeavesNoVisibleEffect)
{
    const auto trace = indexTrace();
    for (SchemeKind scheme : allSchemes) {
        for (LoggingStyle style : bothStyles) {
            for (std::uint64_t point : {7u, 90u, 260u, 600u}) {
                PmSystem sys(configFor(scheme, style));
                auto wl = makeWorkload(GetParam());
                wl->setup(sys);

                Shadow shadow;
                sys.armCrashAfterStores(point);
                std::size_t next = 0;
                bool crashed = false;
                while (next < trace.size()) {
                    try {
                        applyOp(sys, *wl, trace[next], &shadow);
                        ++next;
                    } catch (const CrashInjected &) {
                        crashed = true;
                        break;
                    }
                }
                sys.armCrashAfterStores(0);
                const std::string name = GetParam() + "/" +
                                         schemeName(scheme) + "/n" +
                                         std::to_string(point);
                if (!crashed) {
                    // The point lies past the trace's store count:
                    // nothing to recover, the clean run must match.
                    expectMatchesShadow(name, sys, *wl, trace, shadow);
                    continue;
                }

                sys.recoverHardware();
                wl->recover(sys);
                expectMatchesShadow(name, sys, *wl, trace, shadow);

                // The structure keeps working: finish the trace
                // (re-running the interrupted op) and re-verify.
                for (; next < trace.size(); ++next)
                    applyOp(sys, *wl, trace[next], &shadow);
                expectMatchesShadow(name + "/resumed", sys, *wl, trace,
                                    shadow);
            }
        }
    }
}

// -------------------------------------------------------------------
// Byte-identical PM-image rerun determinism, clean and crashed
// -------------------------------------------------------------------

class IndexDeterminism : public ::testing::TestWithParam<std::string>
{
};

std::uint64_t
cleanRunFingerprint(const std::string &workload, SchemeKind scheme,
                    LoggingStyle style,
                    const std::vector<YcsbMixedOp> &trace)
{
    PmSystem sys(configFor(scheme, style));
    auto wl = makeWorkload(workload);
    wl->setup(sys);
    Shadow shadow;
    for (const auto &op : trace)
        applyOp(sys, *wl, op, &shadow);
    sys.quiesce();
    return pmFingerprint(sys);
}

TEST_P(IndexDeterminism, CleanRerunsAreByteIdentical)
{
    const auto trace = indexTrace();
    for (SchemeKind scheme : allSchemes) {
        for (LoggingStyle style : bothStyles) {
            const auto a =
                cleanRunFingerprint(GetParam(), scheme, style, trace);
            const auto b =
                cleanRunFingerprint(GetParam(), scheme, style, trace);
            EXPECT_EQ(a, b) << GetParam() << "/" << schemeName(scheme);
        }
    }
}

std::uint64_t
crashedRunFingerprint(const std::string &workload, SchemeKind scheme,
                      std::uint64_t point,
                      const std::vector<YcsbMixedOp> &trace)
{
    PmSystem sys(configFor(scheme, LoggingStyle::Undo));
    auto wl = makeWorkload(workload);
    wl->setup(sys);
    Shadow shadow;
    sys.armCrashAfterStores(point);
    std::size_t next = 0;
    while (next < trace.size()) {
        try {
            applyOp(sys, *wl, trace[next], &shadow);
            ++next;
        } catch (const CrashInjected &) {
            break;
        }
    }
    sys.armCrashAfterStores(0);
    sys.recoverHardware();
    wl->recover(sys);
    return pmFingerprint(sys);
}

TEST_P(IndexDeterminism, CrashedRerunsAreByteIdentical)
{
    const auto trace = indexTrace();
    for (SchemeKind scheme : {SchemeKind::FG, SchemeKind::SLPMT}) {
        for (std::uint64_t point : {35u, 180u, 420u}) {
            const auto a =
                crashedRunFingerprint(GetParam(), scheme, point, trace);
            const auto b =
                crashedRunFingerprint(GetParam(), scheme, point, trace);
            EXPECT_EQ(a, b) << GetParam() << "/" << schemeName(scheme)
                            << "/n" << point;
        }
    }
}

// -------------------------------------------------------------------
// The repair routines actually run
// -------------------------------------------------------------------

TEST(IndexRepair, SkiplistRecoverRebuildsLostUpperLinks)
{
    // Upper tower links are lazy (Pattern-2). A lazy link only stays
    // volatile until the crash when nothing persists its line first:
    // the level-l predecessor must be a different node than the
    // level-0 predecessor (whose line the eager publish store
    // persists), and the insert must be among the last numTxnIds
    // transactions (later ones drain it on id wrap). Construct that:
    // fill the list with height-1 keys, then insert one tall key
    // last — its level-1 link lands on the head sentinel, lazily —
    // and crash before any drain.
    PmSystem sys(configFor(SchemeKind::SLPMT, LoggingStyle::Undo));
    SkipListWorkload wl;
    wl.setup(sys);

    const std::vector<std::uint8_t> value(24, 0x5a);
    std::uint64_t tall = 0;
    std::vector<std::uint64_t> inserted;
    for (std::uint64_t key = 1; key <= 199; key += 2) {
        if (SkipListWorkload::towerHeight(key) == 1) {
            wl.insert(sys, key, value);
            inserted.push_back(key);
        } else if (!tall && !inserted.empty()) {
            tall = key;  // has a short level-0 predecessor
        }
    }
    ASSERT_NE(tall, 0u) << "no tall key in [1,199]";
    wl.insert(sys, tall, value);
    inserted.push_back(tall);

    sys.crash();  // the tall key's lazy tower link is dropped
    sys.recoverHardware();
    wl.recover(sys);

    EXPECT_GT(wl.repairs().upperLinks, 0u);
    std::string why;
    EXPECT_TRUE(wl.checkConsistency(sys, &why)) << why;
    for (std::uint64_t key : inserted)
        EXPECT_TRUE(wl.lookup(sys, key, nullptr)) << key;
}

TEST(IndexRepair, SkiplistRecoverClearsAdvisoryDeadMarks)
{
    // The dead mark is Pattern-1b advisory state (lazy + log-free):
    // by rule R4 it may hold *any* residual value after a crash — a
    // deferred lazy line draining into a freed-then-reused region is
    // enough. Recovery must normalize the marks on the live chain
    // without touching key visibility; plant the residue directly.
    PmSystem sys(configFor(SchemeKind::SLPMT, LoggingStyle::Undo));
    SkipListWorkload wl;
    wl.setup(sys);

    const auto ops = ycsbLoad({.numOps = 24, .valueBytes = 32, .seed = 3});
    for (const auto &op : ops)
        wl.insert(sys, op.key, op.value);
    sys.quiesce();
    sys.crash();

    const Addr hdr = sys.peek<Addr>(sys.rootSlotAddr(8));
    const Addr head = sys.peek<Addr>(hdr + 0);
    const Addr first = sys.peek<Addr>(head + 32);  // level-0 next
    ASSERT_NE(first, 0u);
    const std::uint64_t mark = 1;
    sys.pm().poke(first + 24, &mark, sizeof(mark));  // deadMark word

    sys.recoverHardware();
    wl.recover(sys);

    EXPECT_GT(wl.repairs().deadMarks, 0u);
    std::string why;
    EXPECT_TRUE(wl.checkConsistency(sys, &why)) << why;
    for (const auto &op : ops)
        EXPECT_TRUE(wl.lookup(sys, op.key, nullptr)) << op.key;
}

TEST(IndexRepair, BlinktreeCrashScanAttachesSiblingsAndSweepsResidue)
{
    // The split protocol publishes the sibling in its own committed
    // transaction; crashes before the residue sweep or the parent
    // insert leave work that recovery's writers-fix pass must finish.
    const auto ops = ycsbLoad({.numOps = 40, .valueBytes = 32, .seed = 11});
    BlinkTreeWorkload::RepairStats seen;
    for (std::uint64_t point = 2; point <= 300; point += 3) {
        PmSystem sys(configFor(SchemeKind::SLPMT, LoggingStyle::Undo));
        BlinkTreeWorkload wl;
        wl.setup(sys);

        sys.armCrashAfterStores(point);
        bool crashed = false;
        std::size_t committed = 0;
        try {
            for (const auto &op : ops) {
                wl.insert(sys, op.key, op.value);
                ++committed;
            }
        } catch (const CrashInjected &) {
            crashed = true;
        }
        sys.armCrashAfterStores(0);
        if (!crashed)
            break;  // the scan ran past the trace's store count

        sys.recoverHardware();
        wl.recover(sys);
        seen.parentFixes += wl.repairs().parentFixes;
        seen.residueSweeps += wl.repairs().residueSweeps;
        seen.countFixes += wl.repairs().countFixes;
        std::string why;
        ASSERT_TRUE(wl.checkConsistency(sys, &why))
            << "point " << point << ": " << why;
        for (std::size_t i = 0; i < committed; ++i)
            EXPECT_TRUE(wl.lookup(sys, ops[i].key, nullptr))
                << "point " << point << " key " << i;
    }
    EXPECT_GT(seen.parentFixes, 0u);
    EXPECT_GT(seen.residueSweeps, 0u);
}

TEST(IndexRepair, BlinktreeRecoverRecountsAfterLazyCountLoss)
{
    // The element count is lazy (rebuildable): losing it must only
    // cost a recount, never an inconsistency.
    PmSystem sys(configFor(SchemeKind::SLPMT, LoggingStyle::Undo));
    BlinkTreeWorkload wl;
    wl.setup(sys);

    const auto ops = ycsbLoad({.numOps = 40, .valueBytes = 32, .seed = 11});
    for (const auto &op : ops)
        wl.insert(sys, op.key, op.value);

    sys.crash();  // no quiesce: the lazy count word is stale
    sys.recoverHardware();
    wl.recover(sys);

    EXPECT_GT(wl.repairs().countFixes, 0u);
    EXPECT_EQ(wl.count(sys), ops.size());
    std::string why;
    EXPECT_TRUE(wl.checkConsistency(sys, &why)) << why;
}

// -------------------------------------------------------------------
// Compiler Pattern-1/Pattern-2 proofs and refusals per store site
// -------------------------------------------------------------------

struct SiteExpectation
{
    const char *name;
    bool logFree;
    bool lazy;
};

void
expectCompilerFlags(const std::string &workload,
                    const std::vector<SiteExpectation> &expected)
{
    PmSystem sys(configFor(SchemeKind::SLPMT, LoggingStyle::Undo));
    auto wl = makeWorkload(workload);
    wl->setup(sys);

    const CompilerAnnotationPolicy pass;
    std::map<std::string, StoreFlags> inferred;
    for (const auto &info : sys.sites().all())
        inferred[info.name] = pass.flagsFor(info);

    for (const auto &e : expected) {
        ASSERT_TRUE(inferred.count(e.name)) << e.name;
        EXPECT_EQ(inferred[e.name].logFree, e.logFree) << e.name;
        EXPECT_EQ(inferred[e.name].lazy, e.lazy) << e.name;
    }
}

TEST(IndexCompilerPattern, SkiplistSitesProvenOrRefused)
{
    expectCompilerFlags(
        "skiplist",
        {
            // Pattern-1: stores into the transaction's fresh
            // allocation need no logging.
            {"skiplist.insert.freshNode", true, false},
            {"skiplist.insert.value", true, false},
            // Pattern-1b: the advisory mark in the region the
            // transaction frees needs neither logging nor
            // persistence.
            {"skiplist.remove.deadMark", true, true},
            // Pattern-2: the upper tower links are rebuildable.
            {"skiplist.insert.upperLink", false, true},
            // Refused: publication/unlink stores and the count word
            // carry deep crash semantics the pass cannot see.
            {"skiplist.insert.publish", false, false},
            {"skiplist.remove.unlink", false, false},
            {"skiplist.count", false, false},
        });
}

TEST(IndexCompilerPattern, BlinktreeSitesProvenOrRefused)
{
    expectCompilerFlags(
        "blinktree",
        {
            {"blinktree.split.freshNode", true, false},
            {"blinktree.insert.value", true, false},
            // Pattern-2 proves the recount-on-recovery count word —
            // the variant the skiplist's deep-flagged count refuses.
            {"blinktree.count", false, true},
            // Refused: slot/bitmap publication, value swings and the
            // split's high-key/residue stores are deep semantics.
            {"blinktree.insert.slot", false, false},
            {"blinktree.insert.publish", false, false},
            {"blinktree.remove.publish", false, false},
            {"blinktree.update.publish", false, false},
            {"blinktree.split.highKey", false, false},
            {"blinktree.split.residue", false, false},
            // Plain logged sites stay plain.
            {"blinktree.split.next", false, false},
            {"blinktree.parent.entry", false, false},
            {"blinktree.parent.meta", false, false},
        });
}

class IndexCompilerRun : public ::testing::TestWithParam<std::string>
{
};

TEST_P(IndexCompilerRun, CompilerAnnotatedTraceMatchesShadow)
{
    const auto trace = indexTrace();
    PmSystem sys(configFor(SchemeKind::SLPMT, LoggingStyle::Undo));
    const CompilerAnnotationPolicy pass;
    sys.setAnnotationPolicy(&pass);
    auto wl = makeWorkload(GetParam());
    wl->setup(sys);
    Shadow shadow;
    for (const auto &op : trace)
        applyOp(sys, *wl, op, &shadow);
    expectMatchesShadow(GetParam() + "/compiler", sys, *wl, trace,
                        shadow);
}

// -------------------------------------------------------------------
// Checker negatives: corrupted images must be caught
// -------------------------------------------------------------------

struct IndexRig
{
    explicit IndexRig(const std::string &name)
        : workload(makeWorkload(name))
    {
        workload->setup(sys);
        ops = ycsbLoad({.numOps = 60, .valueBytes = 32, .seed = 17});
        for (const auto &op : ops)
            workload->insert(sys, op.key, op.value);
        sys.quiesce();
        sys.hierarchy().crash();  // drop caches; PM image is complete
    }

    bool
    consistent()
    {
        std::string why;
        return workload->checkConsistency(sys, &why);
    }

    void
    clobber(Addr addr, std::uint64_t value)
    {
        sys.pm().poke(addr, &value, sizeof(value));
    }

    PmSystem sys;
    std::unique_ptr<Workload> workload;
    std::vector<YcsbOp> ops;
};

TEST(IndexCheckers, SkiplistDetectsBrokenUpperLink)
{
    IndexRig rig("skiplist");
    // The head sentinel's level-1 pointer leads the tall-tower chain;
    // zeroing it orphans every height>=2 node from level 1.
    const Addr hdr = rig.sys.peek<Addr>(rig.sys.rootSlotAddr(8));
    const Addr head = rig.sys.peek<Addr>(hdr + 0);
    ASSERT_NE(rig.sys.peek<Addr>(head + 32 + 8), 0u)
        << "trace grew no tall towers";
    rig.clobber(head + 32 + 8, 0);
    EXPECT_FALSE(rig.consistent());
}

TEST(IndexCheckers, SkiplistDetectsCountDrift)
{
    IndexRig rig("skiplist");
    const Addr hdr = rig.sys.peek<Addr>(rig.sys.rootSlotAddr(8));
    rig.clobber(hdr + 8, 9999);
    EXPECT_FALSE(rig.consistent());
}

TEST(IndexCheckers, BlinktreeDetectsClearedValuePointer)
{
    IndexRig rig("blinktree");
    // Walk to the leftmost leaf and zero the value pointer of a
    // published slot.
    const Addr hdr = rig.sys.peek<Addr>(rig.sys.rootSlotAddr(9));
    Addr node = rig.sys.peek<Addr>(hdr + 0);
    while (rig.sys.peek<std::uint64_t>(node + 0) == 1)  // internal tag
        node = rig.sys.peek<Addr>(node + 88);
    const auto meta = rig.sys.peek<std::uint64_t>(node + 8);
    const auto high = rig.sys.peek<std::uint64_t>(node + 16);
    bool clobbered = false;
    for (std::uint64_t j = 0; j < 7 && !clobbered; ++j) {
        if (!(meta & (1ULL << j)))
            continue;
        if (rig.sys.peek<std::uint64_t>(node + 32 + 8 * j) >= high)
            continue;  // residue slot: benign by design
        rig.clobber(node + 88 + 8 * j, 0);
        clobbered = true;
    }
    ASSERT_TRUE(clobbered) << "leftmost leaf had no live slot";
    EXPECT_FALSE(rig.consistent());
}

TEST(IndexCheckers, BlinktreeDetectsSeparatorDisorder)
{
    IndexRig rig("blinktree");
    const Addr hdr = rig.sys.peek<Addr>(rig.sys.rootSlotAddr(9));
    const Addr root = rig.sys.peek<Addr>(hdr + 0);
    ASSERT_EQ(rig.sys.peek<std::uint64_t>(root + 0), 1u)
        << "trace left a single-leaf tree";
    rig.clobber(root + 32, ~std::uint64_t{0} - 1);  // first separator
    EXPECT_FALSE(rig.consistent());
}

TEST(IndexCheckers, BlinktreeDetectsCountDrift)
{
    IndexRig rig("blinktree");
    const Addr hdr = rig.sys.peek<Addr>(rig.sys.rootSlotAddr(9));
    rig.clobber(hdr + 8, 9999);
    EXPECT_FALSE(rig.consistent());
}

INSTANTIATE_TEST_SUITE_P(Indexes, IndexDifferential,
                         ::testing::ValuesIn(indexWorkloads()),
                         [](const auto &info) {
                             return testName(info.param);
                         });

INSTANTIATE_TEST_SUITE_P(Indexes, IndexCrash,
                         ::testing::ValuesIn(indexWorkloads()),
                         [](const auto &info) {
                             return testName(info.param);
                         });

INSTANTIATE_TEST_SUITE_P(Indexes, IndexDeterminism,
                         ::testing::ValuesIn(indexWorkloads()),
                         [](const auto &info) {
                             return testName(info.param);
                         });

INSTANTIATE_TEST_SUITE_P(Indexes, IndexCompilerRun,
                         ::testing::ValuesIn(indexWorkloads()),
                         [](const auto &info) {
                             return testName(info.param);
                         });

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
