/**
 * @file
 * Tests of the storeT ISA semantics (Table I), fine-grain logging
 * dedup, line-granularity logging, transaction-ID allocation, and
 * signature behaviour.
 */

#include <gtest/gtest.h>

#include "core/pm_system.hh"
#include "core/tx.hh"
#include "test_util.hh"
#include "txn/signature.hh"
#include "txn/txn_ids.hh"

namespace slpmt
{
namespace
{

SystemConfig
configFor(SchemeKind kind)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(kind);
    return cfg;
}

/** Table I: expected bits for each instruction form. */
struct TableIRow
{
    bool lazy;
    bool logFree;
    bool expectPersist;
    bool expectLog;
};

class TableITest : public ::testing::TestWithParam<TableIRow>
{
};

TEST_P(TableITest, StoreTSetsBitsPerTableI)
{
    const TableIRow row = GetParam();
    PmSystem sys(configFor(SchemeKind::SLPMT));
    const Addr addr = sys.heap().alloc(64);

    sys.txBegin();
    sys.writeT<std::uint64_t>(addr, 1,
                              {.lazy = row.lazy, .logFree = row.logFree});
    const CacheLine *line = sys.hierarchy().findPrivate(addr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->persistBit, row.expectPersist);
    EXPECT_EQ(line->logBits != 0, row.expectLog);
    sys.txCommit();
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, TableITest,
    ::testing::Values(TableIRow{false, false, true, true},   // store
                      TableIRow{false, true, true, false},   // log-free
                      TableIRow{true, true, false, false},   // both
                      TableIRow{true, false, false, true}),  // lazy only
    [](const auto &info) {
        return std::string(info.param.lazy ? "lazy1" : "lazy0") +
               (info.param.logFree ? "_logfree1" : "_logfree0");
    });

TEST(TableI, PlainStoreSetsBothBits)
{
    PmSystem sys(configFor(SchemeKind::SLPMT));
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 1);
    const CacheLine *line = sys.hierarchy().findPrivate(addr);
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->persistBit);
    EXPECT_NE(line->logBits, 0);
    sys.txCommit();
}

TEST(TableI, DisabledFeaturesDegradeToStore)
{
    PmSystem sys(configFor(SchemeKind::FG));  // log-free + lazy off
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.writeT<std::uint64_t>(addr, 1, {.lazy = true, .logFree = true});
    const CacheLine *line = sys.hierarchy().findPrivate(addr);
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->persistBit);
    EXPECT_NE(line->logBits, 0);
    sys.txCommit();
}

TEST(TableI, LazyStoreDoesNotClearPersistBit)
{
    // Section III-C1: a store cancels lazy persistency; a later lazy
    // storeT must not re-enable it.
    PmSystem sys(configFor(SchemeKind::SLPMT));
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 1);
    sys.writeT<std::uint64_t>(addr + 8, 2,
                              {.lazy = true, .logFree = true});
    const CacheLine *line = sys.hierarchy().findPrivate(addr);
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->persistBit);
    sys.txCommit();
}

TEST(TableI, StoreTOutsideTransactionActsAsStore)
{
    PmSystem sys(configFor(SchemeKind::SLPMT));
    const Addr addr = sys.heap().alloc(64);
    sys.writeT<std::uint64_t>(addr, 5, {.lazy = true, .logFree = true});
    // Outside a transaction no metadata is set and no record created.
    const CacheLine *line = sys.hierarchy().findPrivate(addr);
    ASSERT_NE(line, nullptr);
    EXPECT_FALSE(line->persistBit);
    EXPECT_EQ(line->logBits, 0);
    EXPECT_EQ(sys.stats().get("txn.logRecordsCreated"), 0u);
}

TEST(FineGrainLogging, OneRecordPerWordNoDuplicates)
{
    PmSystem sys(configFor(SchemeKind::FG));
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 1);
    EXPECT_EQ(sys.stats().get("txn.logRecordsCreated"), 1u);
    sys.write<std::uint64_t>(addr, 2);  // same word: no new record
    EXPECT_EQ(sys.stats().get("txn.logRecordsCreated"), 1u);
    sys.write<std::uint64_t>(addr + 8, 3);  // next word: one more
    EXPECT_EQ(sys.stats().get("txn.logRecordsCreated"), 2u);
    sys.txCommit();
}

TEST(FineGrainLogging, UndoRecordHoldsPreStoreValue)
{
    PmSystem sys(configFor(SchemeKind::FG));
    const Addr addr = sys.heap().alloc(64);
    constexpr std::uint64_t old_marker = 0x0123456789abcdefULL;
    constexpr std::uint64_t new_marker = 0xfedcba9876543210ULL;
    // Establish a durable old value.
    sys.txBegin();
    sys.write<std::uint64_t>(addr, old_marker);
    sys.txCommit();
    sys.quiesce();

    sys.txBegin();
    sys.write<std::uint64_t>(addr, new_marker);
    // Drain the buffer record so we can inspect the durable log.
    sys.engine().buffer().drainAll(0);
    const auto records = sys.engine().logArea().scanValid();
    ASSERT_EQ(records.size(), 1u);
    std::uint64_t old_val = 0;
    std::memcpy(&old_val, records[0].data.data(), sizeof(old_val));
    EXPECT_EQ(old_val, old_marker);
    sys.txCommit();
}

TEST(LineGranularity, OneRecordPerLine)
{
    PmSystem sys(configFor(SchemeKind::ATOM));
    const Addr addr = sys.heap().alloc(128);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 1);
    EXPECT_EQ(sys.stats().get("txn.logRecordsCreated"), 1u);
    sys.write<std::uint64_t>(addr + 8, 2);  // same line: no new record
    EXPECT_EQ(sys.stats().get("txn.logRecordsCreated"), 1u);
    sys.write<std::uint64_t>(addr + 64, 3);  // next line
    EXPECT_EQ(sys.stats().get("txn.logRecordsCreated"), 2u);
    sys.txCommit();
}

TEST(TxnIds, CircularAllocationOrder)
{
    TxnIdAllocator ids;
    EXPECT_TRUE(ids.hasFree());
    const auto a = ids.allocate();
    const auto b = ids.allocate();
    ids.allocate();
    ids.allocate();
    EXPECT_FALSE(ids.hasFree());
    EXPECT_EQ(ids.oldestLive(), a);
    ids.release(a);
    EXPECT_TRUE(ids.hasFree());
    EXPECT_EQ(ids.oldestLive(), b);
    // The freed ID comes back at the end of the circle.
    EXPECT_EQ(ids.allocate(), a);
    EXPECT_FALSE(ids.hasFree());
}

TEST(TxnIds, ConfigurableCount)
{
    TxnIdAllocator ids(2);
    ids.allocate();
    ids.allocate();
    EXPECT_FALSE(ids.hasFree());
}

TEST(TxnIds, ResetRestoresAll)
{
    TxnIdAllocator ids;
    ids.allocate();
    ids.allocate();
    ids.reset();
    for (int i = 0; i < 4; ++i)
        ids.allocate();
    EXPECT_FALSE(ids.hasFree());
}

TEST(Signature, NoFalseNegatives)
{
    Signature sig;
    Rng rng(5);
    std::vector<Addr> inserted;
    for (int i = 0; i < 200; ++i) {
        const Addr a = rng.next() & ~0x3FULL;
        sig.insert(a);
        inserted.push_back(a);
    }
    for (Addr a : inserted)
        EXPECT_TRUE(sig.mightContain(a));
}

TEST(Signature, LowFalsePositiveRateWhenSparse)
{
    Signature sig;
    Rng rng(6);
    for (int i = 0; i < 64; ++i)
        sig.insert(rng.next() & ~0x3FULL);
    int fp = 0;
    for (int i = 0; i < 10000; ++i) {
        if (sig.mightContain(rng.next() & ~0x3FULL))
            ++fp;
    }
    // 64 lines, 4 hashes into 2048 bits: the false-positive rate
    // should be well below 1%.
    EXPECT_LT(fp, 100);
}

TEST(Signature, LineGranular)
{
    Signature sig;
    sig.insert(0x1008);
    EXPECT_TRUE(sig.mightContain(0x1030));  // same line
}

TEST(Signature, ClearEmpties)
{
    Signature sig;
    sig.insert(0x1000);
    sig.clear();
    EXPECT_TRUE(sig.empty());
    EXPECT_FALSE(sig.mightContain(0x1000));
}

TEST(Commit, EagerLinesDurableAfterCommit)
{
    PmSystem sys(configFor(SchemeKind::SLPMT));
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 0x1234);
    sys.txCommit();
    // Crash immediately: the committed value must be durable.
    sys.crash();
    sys.recoverHardware();
    EXPECT_EQ(sys.peek<std::uint64_t>(addr), 0x1234u);
}

TEST(Commit, UncommittedStoresRollBack)
{
    PmSystem sys(configFor(SchemeKind::SLPMT));
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 0x1111);
    sys.txCommit();
    sys.quiesce();

    sys.txBegin();
    sys.write<std::uint64_t>(addr, 0x2222);
    // Push the dirty line to PM mid-transaction (steal): the undo
    // record goes first, so rollback still works.
    sys.engine().advance(sys.hierarchy().flushAll(sys.engine().now()));
    sys.crash();
    sys.recoverHardware();
    EXPECT_EQ(sys.peek<std::uint64_t>(addr), 0x1111u);
}

TEST(Commit, LogTruncatedAfterCommit)
{
    PmSystem sys(configFor(SchemeKind::FG));
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 1);
    sys.txCommit();
    EXPECT_TRUE(sys.engine().logArea().empty());
}

TEST(Commit, NestedTransactionPanics)
{
    PmSystem sys(configFor(SchemeKind::SLPMT));
    sys.txBegin();
    EXPECT_THROW(sys.txBegin(), PanicError);
    sys.txCommit();
}

TEST(Commit, CommitOutsideTransactionPanics)
{
    PmSystem sys(configFor(SchemeKind::SLPMT));
    EXPECT_THROW(sys.txCommit(), PanicError);
}

TEST(Ede, SpanRecordsCoalescePerStore)
{
    PmSystem sys(configFor(SchemeKind::EDE));
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    std::uint8_t buf[32] = {};
    // One 32-byte store: 4 words coalesce into one aligned record.
    sys.writeBytes(addr, buf, sizeof(buf));
    EXPECT_EQ(sys.stats().get("txn.logRecordsCreated"), 1u);
    sys.txCommit();
}

TEST(Ede, RecordsPersistImmediately)
{
    PmSystem sys(configFor(SchemeKind::EDE));
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 1);
    // No buffering: the record is already in the durable log area.
    EXPECT_FALSE(sys.engine().logArea().empty());
    EXPECT_TRUE(sys.engine().buffer().empty());
    sys.txCommit();
}

TEST(RemoteCoherence, WriteConflictWithInflightTxnDetected)
{
    PmSystem sys(configFor(SchemeKind::SLPMT));
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 1);
    EXPECT_TRUE(sys.engine().remoteWrite(addr));
    sys.txCommit();
    EXPECT_FALSE(sys.engine().remoteWrite(addr));
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
